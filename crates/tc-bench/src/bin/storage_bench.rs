//! Storage-format telemetry: text-load vs. segment-open query latency.
//!
//! For each dataset, builds the network and its TC-Tree once, persists
//! both in the text format and the `tc-store` segment format, then
//! measures the serving path each format offers:
//!
//! * **load/open** — text must parse the whole file; the segment reader
//!   validates the header and node directory only;
//! * **first query** — open + one QBA, the cold-start latency a serving
//!   process pays (the segment materialises only the retrieved nodes);
//! * **warm query** — steady-state QBA/QBP latency once caches are hot;
//! * **file size** — bytes on disk per format.
//!
//! A final `coldset` section measures the byte-budgeted node cache under
//! memory pressure (budget = segment/10) across both page sources
//! (buffered vs mmap); its deterministic `*_bytes` ledger metrics are
//! gated ±10% in CI.
//!
//! With `--json <path>` the numbers are also written as a
//! machine-readable report — CI uploads it as the `BENCH_pr.json`
//! artifact, one datapoint per PR.

use tc_bench::report::JsonReport;
use tc_bench::{build_dataset, fmt_count, fmt_secs, BenchArgs, Dataset, Table};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::{SegmentTcTree, SourceKind, StoreOptions};
use tc_txdb::Pattern;
use tc_util::Stopwatch;

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_threads();
    let runs = if args.quick { 20 } else { 200 };
    let mut json = JsonReport::new("storage");

    let scratch = std::env::temp_dir().join(format!("tc_storage_bench_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    for dataset in args.datasets() {
        let name = dataset.name();
        let net = build_dataset(dataset, args.scale);
        let tree = TcTreeBuilder::default().build(&net);
        println!(
            "\n## Storage — {name}: {} vertices, {} tree nodes",
            fmt_count(net.num_vertices()),
            fmt_count(tree.num_nodes()),
        );

        // Persist both formats.
        let net_txt = scratch.join(format!("{name}.dbnet"));
        let net_seg = scratch.join(format!("{name}.net.seg"));
        let tree_txt = scratch.join(format!("{name}.tct"));
        let tree_seg = scratch.join(format!("{name}.tree.seg"));
        tc_data::save_network_to_path(&net, &net_txt).expect("save text network");
        tc_store::save_network_segment_to_path(&net, &net_seg).expect("save segment network");
        tree.save_to_path(&tree_txt).expect("save text tree");
        tc_store::save_tree_segment_to_path(&tree, &tree_seg).expect("save segment tree");

        let mut table = Table::new(
            format!("Storage formats ({name})"),
            &["Metric", "Text", "Segment"],
        );
        let size = |p: &std::path::Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        table.push_row(vec![
            "network file size".into(),
            fmt_count(size(&net_txt) as usize),
            fmt_count(size(&net_seg) as usize),
        ]);
        table.push_row(vec![
            "tree file size".into(),
            fmt_count(size(&tree_txt) as usize),
            fmt_count(size(&tree_seg) as usize),
        ]);
        json.push(name, "net_text_bytes", size(&net_txt) as f64);
        json.push(name, "net_seg_bytes", size(&net_seg) as f64);
        json.push(name, "tree_text_bytes", size(&tree_txt) as f64);
        json.push(name, "tree_seg_bytes", size(&tree_seg) as f64);

        // Network load latency.
        let sw = Stopwatch::start();
        let loaded = tc_data::load_network_from_path(&net_txt).expect("load text network");
        let net_text_load = sw.elapsed_secs();
        assert_eq!(loaded.stats(), net.stats());
        let sw = Stopwatch::start();
        let loaded = tc_store::load_network_segment_from_path(&net_seg).expect("load seg network");
        let net_seg_load = sw.elapsed_secs();
        assert_eq!(loaded.stats(), net.stats());
        table.push_row(vec![
            "network load".into(),
            fmt_secs(net_text_load),
            fmt_secs(net_seg_load),
        ]);
        json.push(name, "net_text_load_secs", net_text_load);
        json.push(name, "net_seg_load_secs", net_seg_load);

        // Cold start: open the tree and answer one mid-range QBA.
        let alpha = tree.alpha_upper_bound() / 2.0;
        let sw = Stopwatch::start();
        let text_tree = TcTree::load_from_path(&tree_txt).expect("load text tree");
        let tree_text_load = sw.elapsed_secs();
        let first = text_tree.query_by_alpha(alpha);
        let text_first_query = tree_text_load + first.elapsed_secs;

        let sw = Stopwatch::start();
        let seg_tree = SegmentTcTree::open(&tree_seg).expect("open segment tree");
        let tree_seg_open = sw.elapsed_secs();
        let sw = Stopwatch::start();
        let seg_first = seg_tree.query_by_alpha(alpha).expect("segment QBA");
        let seg_first_query = tree_seg_open + sw.elapsed_secs();
        assert_eq!(first.retrieved_nodes, seg_first.retrieved_nodes);

        table.push_row(vec![
            "tree open/parse".into(),
            fmt_secs(tree_text_load),
            fmt_secs(tree_seg_open),
        ]);
        table.push_row(vec![
            "open + first QBA".into(),
            fmt_secs(text_first_query),
            fmt_secs(seg_first_query),
        ]);
        json.push(name, "tree_text_load_secs", tree_text_load);
        json.push(name, "tree_seg_open_secs", tree_seg_open);
        json.push(name, "first_qba_text_secs", text_first_query);
        json.push(name, "first_qba_seg_secs", seg_first_query);
        json.push(
            name,
            "first_qba_materialized_nodes",
            seg_tree.materialized_nodes() as f64,
        );

        // Warm steady state, averaged over `runs` repetitions.
        let warm = |f: &mut dyn FnMut()| {
            let sw = Stopwatch::start();
            for _ in 0..runs {
                f();
            }
            sw.elapsed_secs() / runs as f64
        };
        let text_warm = warm(&mut || {
            std::hint::black_box(text_tree.query_by_alpha(alpha));
        });
        let seg_warm = warm(&mut || {
            std::hint::black_box(seg_tree.query_by_alpha(alpha).expect("segment QBA"));
        });
        table.push_row(vec![
            format!("warm QBA (α={alpha:.3}, avg of {runs})"),
            fmt_secs(text_warm),
            fmt_secs(seg_warm),
        ]);
        json.push(name, "warm_qba_text_secs", text_warm);
        json.push(name, "warm_qba_seg_secs", seg_warm);

        // Warm QBP over every depth-1 pattern.
        let singles: Vec<Pattern> = text_tree
            .nodes_at_depth(1)
            .into_iter()
            .map(|id| text_tree.node(id).pattern.clone())
            .collect();
        if !singles.is_empty() {
            let text_qbp = warm(&mut || {
                for q in &singles {
                    std::hint::black_box(text_tree.query_by_pattern(q));
                }
            }) / singles.len() as f64;
            let seg_qbp = warm(&mut || {
                for q in &singles {
                    std::hint::black_box(seg_tree.query_by_pattern(q).expect("segment QBP"));
                }
            }) / singles.len() as f64;
            table.push_row(vec![
                format!("warm QBP (singleton, avg of {})", runs * singles.len()),
                fmt_secs(text_qbp),
                fmt_secs(seg_qbp),
            ]);
            json.push(name, "warm_qbp_text_secs", text_qbp);
            json.push(name, "warm_qbp_seg_secs", seg_qbp);
        }

        table.print();
    }

    coldset(&scratch, &args, runs, &mut json);

    std::fs::remove_dir_all(&scratch).ok();

    if let Some(path) = &args.json {
        json.write_to_path(path).expect("write json report");
        println!(
            "\nwrote {} telemetry datapoints to {}",
            json.len(),
            path.display()
        );
    }
}

/// Cold-set serving: the byte-budgeted node cache under memory pressure,
/// with a budget a tenth of the segment file — so every full sweep churns
/// ~90% of the working set through eviction — compared across the two
/// page sources (buffered `read(2)` vs `mmap(2)`) and against the
/// unbounded warm path.
///
/// Always runs on the BK dataset regardless of `--dataset`, so the
/// telemetry group (`storage:coldset`) is one fixed, deterministic shape:
/// the `*_bytes` metrics (segment size, budget, working set, peak
/// residency) are pure functions of `--scale` and gate at ±10% in CI.
fn coldset(scratch: &std::path::Path, args: &BenchArgs, runs: usize, json: &mut JsonReport) {
    let net = build_dataset(Dataset::Bk, args.scale);
    let tree = TcTreeBuilder::default().build(&net);
    let seg_path = scratch.join("coldset.tree.seg");
    tc_store::save_tree_segment_to_path(&tree, &seg_path).expect("save coldset segment");
    let segment_bytes = std::fs::metadata(&seg_path).map(|m| m.len()).unwrap_or(0);
    let budget = (segment_bytes / 10).max(1);

    // The fully-materialised working set, from an unbounded twin's ledger.
    let unbounded = SegmentTcTree::open(&seg_path).expect("open unbounded");
    let full = unbounded.query_by_alpha(0.0).expect("unbounded sweep");
    let working_set_bytes = unbounded.cache_stats().bytes_used;

    println!(
        "\n## Storage — coldset (BK): {} tree nodes, {} segment bytes, budget {} bytes",
        fmt_count(tree.num_nodes()),
        fmt_count(segment_bytes as usize),
        fmt_count(budget as usize),
    );

    let mut table = Table::new(
        "Cold-set serving (BK, cache = segment/10)",
        &["Metric", "Buffered", "Mmap"],
    );
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); 3];
    for kind in [SourceKind::Buffered, SourceKind::Mmap] {
        let opts = StoreOptions {
            source: kind,
            cache_bytes: Some(budget),
        };
        let seg = SegmentTcTree::open_with(&seg_path, opts).expect("open budgeted");

        // Cold start: the first full sweep materialises every node once.
        let sw = Stopwatch::start();
        let first = seg.query_by_alpha(0.0).expect("cold sweep");
        let cold_secs = sw.elapsed_secs();
        assert_eq!(first.retrieved_nodes, full.retrieved_nodes);

        // Churn: repeated full sweeps against a cache that holds a tenth
        // of the working set — steady-state eviction pressure.
        let sw = Stopwatch::start();
        let mut peak = seg.cache_stats().bytes_used;
        for _ in 0..runs {
            std::hint::black_box(seg.query_by_alpha(0.0).expect("churn sweep"));
            peak = peak.max(seg.cache_stats().bytes_used);
        }
        let churn_qps = runs as f64 / sw.elapsed_secs();

        // Warm reference: the same source kind with no budget.
        let warm_seg = SegmentTcTree::open_with(
            &seg_path,
            StoreOptions {
                source: kind,
                cache_bytes: None,
            },
        )
        .expect("open unbounded");
        warm_seg.query_by_alpha(0.0).expect("prewarm");
        let sw = Stopwatch::start();
        for _ in 0..runs {
            std::hint::black_box(warm_seg.query_by_alpha(0.0).expect("warm sweep"));
        }
        let warm_qps = runs as f64 / sw.elapsed_secs();

        let stats = seg.cache_stats();
        let k = kind.name();
        cells[0].push(fmt_secs(cold_secs));
        cells[1].push(format!("{churn_qps:.0}"));
        cells[2].push(format!("{warm_qps:.0}"));
        json.push("coldset", format!("cold_sweep_{k}_secs"), cold_secs);
        json.push("coldset", format!("churn_qba_{k}_qps"), churn_qps);
        json.push("coldset", format!("warm_qba_{k}_qps"), warm_qps);
        if kind == SourceKind::Buffered {
            // The byte ledger is a deterministic function of the access
            // pattern, identical across page sources: record it once.
            json.push("coldset", "segment_bytes", segment_bytes as f64);
            json.push("coldset", "cache_budget_bytes", budget as f64);
            json.push("coldset", "working_set_bytes", working_set_bytes as f64);
            json.push("coldset", "cache_peak_bytes", peak as f64);
            json.push("coldset", "evictions", stats.evictions as f64);
            assert!(
                stats.evictions > 0,
                "a tenth-of-segment budget must evict during full sweeps"
            );
        }
    }
    for (row, label) in [
        "cold sweep (open + first full QBA)",
        "churn QBA/s (budgeted, full sweeps)",
        "warm QBA/s (unbounded)",
    ]
    .iter()
    .enumerate()
    {
        let mut r = vec![label.to_string()];
        r.extend(cells[row].clone());
        table.push_row(r);
    }
    table.print();
}
