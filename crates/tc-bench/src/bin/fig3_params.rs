//! Reproduces **Figure 3**: the effects of the cohesion threshold `α` and
//! the TCS frequency threshold `ε` on BK, GW and AMINER samples.
//!
//! Paper panels per dataset: (time cost, NP, NV, NE) × α for
//! TCS(ε = 0.1/0.2/0.3), TCFA, TCFI. As in §7.1, the miners run on BFS
//! samples of the full networks (BK/GW 10k edges, AMINER 5k — scaled).

use tc_bench::{build_dataset, fmt_count, fmt_secs, BenchArgs, Dataset, Table};
use tc_core::{Miner, MiningResult, TcfaMiner, TcfiMiner, TcsMiner};
use tc_graph::bfs_edge_sample;

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let alphas: Vec<f64> = if args.quick {
        vec![0.0, 0.2, 0.5, 1.0, 2.0]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.5, 1.0, 1.5, 2.0]
    };
    let datasets: Vec<Dataset> = args
        .datasets()
        .into_iter()
        .filter(|d| *d != Dataset::Syn) // the paper uses BK/GW/AMINER here
        .collect();

    for dataset in datasets {
        let full = build_dataset(dataset, args.scale);
        // §7.1: BFS samples — 10k edges for BK/GW, 5k for AMINER (scaled).
        let target = match dataset {
            Dataset::Aminer => (5_000.0 * args.scale) as usize,
            _ => (10_000.0 * args.scale) as usize,
        }
        .max(200);
        let sample_edges = bfs_edge_sample(full.graph(), 0, target);
        let net = full.induced_subnetwork(&sample_edges);
        println!(
            "\n## Figure 3 — {} sample: {} vertices, {} edges",
            dataset.name(),
            fmt_count(net.num_vertices()),
            fmt_count(net.num_edges())
        );

        let mut time_t = Table::new(
            format!("Fig 3 time cost ({})", dataset.name()),
            &["alpha", "TCFI", "TCFA", "TCS(0.1)", "TCS(0.2)", "TCS(0.3)"],
        );
        let mut np_t = Table::new(
            format!("Fig 3 NP ({})", dataset.name()),
            &["alpha", "TCFI/TCFA", "TCS(0.1)", "TCS(0.2)", "TCS(0.3)"],
        );
        let mut nv_t = Table::new(
            format!("Fig 3 NV ({})", dataset.name()),
            &["alpha", "TCFI/TCFA", "TCS(0.1)", "TCS(0.2)", "TCS(0.3)"],
        );
        let mut ne_t = Table::new(
            format!("Fig 3 NE ({})", dataset.name()),
            &["alpha", "TCFI/TCFA", "TCS(0.1)", "TCS(0.2)", "TCS(0.3)"],
        );

        for &alpha in &alphas {
            let tcfi = TcfiMiner::default().mine(&net, alpha);
            let tcfa = TcfaMiner::default().mine(&net, alpha);
            let tcs: Vec<MiningResult> = [0.1, 0.2, 0.3]
                .iter()
                .map(|&eps| TcsMiner::with_epsilon(eps).mine(&net, alpha))
                .collect();
            assert!(
                tcfi.same_trusses(&tcfa),
                "TCFA and TCFI must agree (alpha = {alpha})"
            );

            time_t.push_row(vec![
                format!("{alpha}"),
                fmt_secs(tcfi.stats.elapsed_secs),
                fmt_secs(tcfa.stats.elapsed_secs),
                fmt_secs(tcs[0].stats.elapsed_secs),
                fmt_secs(tcs[1].stats.elapsed_secs),
                fmt_secs(tcs[2].stats.elapsed_secs),
            ]);
            np_t.push_row(vec![
                format!("{alpha}"),
                fmt_count(tcfi.np()),
                fmt_count(tcs[0].np()),
                fmt_count(tcs[1].np()),
                fmt_count(tcs[2].np()),
            ]);
            nv_t.push_row(vec![
                format!("{alpha}"),
                fmt_count(tcfi.nv()),
                fmt_count(tcs[0].nv()),
                fmt_count(tcs[1].nv()),
                fmt_count(tcs[2].nv()),
            ]);
            ne_t.push_row(vec![
                format!("{alpha}"),
                fmt_count(tcfi.ne()),
                fmt_count(tcs[0].ne()),
                fmt_count(tcs[1].ne()),
                fmt_count(tcs[2].ne()),
            ]);
        }
        time_t.print();
        np_t.print();
        nv_t.print();
        ne_t.print();
    }
}
