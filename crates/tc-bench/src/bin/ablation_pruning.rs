//! Extra experiment: the §7.1 pruning ablation.
//!
//! The paper reports that on the 5,000-edge AMINER sample at α = 0, TCFA
//! calls MPTD 622,852 times while TCFI calls it 152,396 times (pruning
//! 75.5% of candidates) and is still ~3 orders of magnitude faster because
//! each MPTD call runs on a tiny intersection instead of the full theme
//! network. This binary reproduces those counters on the AMINER analog.

use tc_bench::{build_dataset, fmt_count, fmt_secs, BenchArgs, Dataset, Table};
use tc_core::{Miner, TcfaMiner, TcfiMiner};
use tc_graph::bfs_edge_sample;

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let full = build_dataset(Dataset::Aminer, args.scale);
    let target = ((5_000.0 * args.scale) as usize).max(200);
    let sample = bfs_edge_sample(full.graph(), 0, target);
    let net = full.induced_subnetwork(&sample);
    println!(
        "## Pruning ablation — AMINER sample: {} vertices, {} edges, alpha = 0\n",
        fmt_count(net.num_vertices()),
        fmt_count(net.num_edges())
    );

    let mut table = Table::new(
        "TCFA vs TCFI pruning effectiveness",
        &[
            "Miner",
            "Candidates",
            "MPTD calls",
            "Pruned by intersection",
            "Prune rate",
            "Time",
            "NP",
        ],
    );
    let tcfa = TcfaMiner::default().mine(&net, 0.0);
    let tcfi = TcfiMiner::default().mine(&net, 0.0);
    assert!(tcfa.same_trusses(&tcfi), "results must be identical");

    for r in [&tcfa, &tcfi] {
        let name = if std::ptr::eq(r, &tcfa) {
            "TCFA"
        } else {
            "TCFI"
        };
        let prune_rate = if r.stats.candidates_generated > 0 {
            100.0 * r.stats.pruned_by_intersection as f64 / r.stats.candidates_generated as f64
        } else {
            0.0
        };
        table.push_row(vec![
            name.to_string(),
            fmt_count(r.stats.candidates_generated),
            fmt_count(r.stats.mptd_calls),
            fmt_count(r.stats.pruned_by_intersection),
            format!("{prune_rate:.1}%"),
            fmt_secs(r.stats.elapsed_secs),
            fmt_count(r.np()),
        ]);
    }
    table.print();

    let speedup = tcfa.stats.elapsed_secs / tcfi.stats.elapsed_secs.max(1e-9);
    println!("\nTCFI speedup over TCFA: {speedup:.1}x");
    println!(
        "MPTD call reduction: {} -> {} ({:.1}% fewer)",
        fmt_count(tcfa.stats.mptd_calls),
        fmt_count(tcfi.stats.mptd_calls),
        100.0 * (1.0 - tcfi.stats.mptd_calls as f64 / tcfa.stats.mptd_calls.max(1) as f64)
    );
}
