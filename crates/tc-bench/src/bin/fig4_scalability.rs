//! Reproduces **Figure 4**: how miner runtime scales with the number of
//! sampled edges (α = 0, the worst case).
//!
//! Paper panels per dataset: time cost, NP, NV/NP and NE/NP as the BFS
//! sample grows from 10³ edges to the full network. TCS and TCFA are
//! dropped once they exceed a time budget, mirroring the paper's
//! "stop reporting when they cost more than one day".

use tc_bench::{build_dataset, fmt_count, fmt_f64, fmt_secs, BenchArgs, Dataset, Table};
use tc_core::{Miner, TcfaMiner, TcfiMiner, TcsMiner};
use tc_graph::bfs_edge_sample;

/// Per-miner time budget (seconds); a miner that exceeds it is not run at
/// larger sizes (the paper's one-day cutoff, scaled to laptop experiments).
const TIME_BUDGET_SECS: f64 = 30.0;

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let datasets: Vec<Dataset> = args
        .datasets()
        .into_iter()
        .filter(|d| *d != Dataset::Syn)
        .collect();

    for dataset in datasets {
        let full = build_dataset(dataset, args.scale);
        let full_edges = full.num_edges();
        let mut sizes: Vec<usize> = vec![250, 500, 1000, 2000, 4000, 8000];
        sizes.retain(|&s| s < full_edges);
        sizes.push(full_edges);
        if args.quick {
            sizes = sizes.into_iter().step_by(2).collect();
        }

        println!(
            "\n## Figure 4 — {} (full: {} edges)",
            dataset.name(),
            fmt_count(full_edges)
        );
        let mut table = Table::new(
            format!("Fig 4 scalability ({}), alpha = 0", dataset.name()),
            &[
                "#Edges",
                "TCFI time",
                "TCFA time",
                "TCS(0.2) time",
                "NP",
                "NV/NP",
                "NE/NP",
            ],
        );

        let mut tcfa_alive = true;
        let mut tcs_alive = true;
        for &target in &sizes {
            let sample = bfs_edge_sample(full.graph(), 0, target);
            let net = full.induced_subnetwork(&sample);

            let tcfi = TcfiMiner::default().mine(&net, 0.0);
            let tcfa_cell = if tcfa_alive {
                let r = TcfaMiner::default().mine(&net, 0.0);
                assert!(r.same_trusses(&tcfi), "TCFA ≠ TCFI at {target} edges");
                if r.stats.elapsed_secs > TIME_BUDGET_SECS {
                    tcfa_alive = false;
                }
                fmt_secs(r.stats.elapsed_secs)
            } else {
                "> budget".to_string()
            };
            let tcs_cell = if tcs_alive {
                let r = TcsMiner::with_epsilon(0.2).mine(&net, 0.0);
                if r.stats.elapsed_secs > TIME_BUDGET_SECS {
                    tcs_alive = false;
                }
                fmt_secs(r.stats.elapsed_secs)
            } else {
                "> budget".to_string()
            };

            let np = tcfi.np();
            let (nv_np, ne_np) = if np > 0 {
                (tcfi.nv() as f64 / np as f64, tcfi.ne() as f64 / np as f64)
            } else {
                (0.0, 0.0)
            };
            table.push_row(vec![
                fmt_count(net.num_edges()),
                fmt_secs(tcfi.stats.elapsed_secs),
                tcfa_cell,
                tcs_cell,
                fmt_count(np),
                fmt_f64(nv_np),
                fmt_f64(ne_np),
            ]);
        }
        table.print();
    }
}
