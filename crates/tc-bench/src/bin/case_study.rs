//! Reproduces the **§7.4 case study** (Table 4 + Figure 6): meaningful
//! overlapping theme communities in a co-author database network.
//!
//! The paper shows groups of collaborating scholars sharing research
//! interests ("data mining, sequential pattern", …), overlapping
//! communities around prolific authors, and the shrink-as-pattern-grows
//! behaviour of Theorem 5.1. We reproduce the same phenomena on the
//! AMINER analog, printing keyword sets (Table 4) and member lists
//! (Figure 6).

use tc_bench::BenchArgs;
use tc_core::{extract_communities, Miner, TcfiMiner};
use tc_data::{generate_coauthor, CoauthorConfig};

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let out = generate_coauthor(&CoauthorConfig {
        groups: 6,
        authors_per_group: (12.0 * args.scale).round().max(6.0) as usize,
        interdisciplinary_authors: 4,
        papers_per_author: 24,
        keywords_per_paper: 4,
        collab_prob: 0.5,
        cross_group_edges: 12,
        generic_keyword_prob: 0.3,
        seed: 0xCA5E,
    });
    let net = &out.network;
    println!(
        "## Case study — co-author network: {} authors, {} collaborations\n",
        net.num_vertices(),
        net.num_edges()
    );

    let result = TcfiMiner::default().mine(net, 0.05);
    let mut communities = result.communities();
    // Rank by (pattern length, size) to surface the most thematic ones.
    communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));

    println!("### Table 4 analog — keyword themes of the top communities\n");
    let space = net.item_space();
    for (i, c) in communities.iter().take(8).enumerate() {
        println!(
            "p{}: {}  ({} authors, {} edges)",
            i + 1,
            space.render(&c.pattern),
            c.num_vertices(),
            c.num_edges()
        );
    }

    println!("\n### Figure 6 analog — community membership\n");
    for (i, c) in communities.iter().take(6).enumerate() {
        let names: Vec<&str> = c
            .vertices
            .iter()
            .map(|&v| out.author_names[v as usize].as_str())
            .collect();
        println!("community p{}: {}", i + 1, names.join(", "));
    }

    // Theorem 5.1 in action: a longer pattern's community is contained in
    // the shorter pattern's community.
    println!("\n### Theme shrinkage (Theorem 5.1)\n");
    let mut shown = 0;
    for truss in &result.trusses {
        if truss.pattern.len() < 2 {
            continue;
        }
        for sub in truss.pattern.k_minus_one_subsets() {
            if sub.is_empty() {
                continue;
            }
            if let Some(parent) = result.truss_of(&sub) {
                assert!(
                    truss.is_subgraph_of(parent),
                    "Theorem 5.1 violated: {} ⊄ {}",
                    truss.pattern,
                    sub
                );
                if shown < 4 {
                    println!(
                        "{} ({} authors)  ⊆  {} ({} authors)",
                        space.render(&truss.pattern),
                        truss.num_vertices(),
                        space.render(&sub),
                        parent.num_vertices()
                    );
                    shown += 1;
                }
            }
        }
    }

    // Overlap (Figure 6(e)-(f)): communities of different themes sharing
    // authors.
    println!("\n### Overlapping communities\n");
    let mut reported = 0;
    'outer: for i in 0..communities.len() {
        for j in (i + 1)..communities.len() {
            let (a, b) = (&communities[i], &communities[j]);
            if a.pattern != b.pattern {
                let overlap = a.vertex_overlap(b);
                if overlap >= 2 {
                    println!(
                        "{} and {} share {} authors",
                        space.render(&a.pattern),
                        space.render(&b.pattern),
                        overlap
                    );
                    reported += 1;
                    if reported >= 5 {
                        break 'outer;
                    }
                }
            }
        }
    }
    let _ = extract_communities; // re-exported path check
}
