//! Reproduces **Table 3**: TC-Tree indexing performance — Indexing Time,
//! peak Memory, and #Nodes for all four datasets.

use tc_bench::{build_dataset, fmt_count, fmt_secs, BenchArgs, Table};
use tc_index::TcTreeBuilder;
use tc_util::heapsize::format_bytes;
use tc_util::HeapSize;

#[global_allocator]
static ALLOC: tc_bench::alloc::CountingAlloc = tc_bench::alloc::CountingAlloc;

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let mut table = Table::new(
        format!("Table 3 — TC-Tree indexing (scale {})", args.scale),
        &[
            "Dataset",
            "Indexing Time",
            "Peak Memory",
            "Tree Heap",
            "#Nodes",
            "Max Depth",
        ],
    );
    for dataset in args.datasets() {
        let net = build_dataset(dataset, args.scale);
        tc_bench::alloc::reset_peak();
        let before = tc_bench::alloc::current_bytes();
        let tree = TcTreeBuilder {
            threads: 4,
            max_len: usize::MAX,
        }
        .build(&net);
        let peak = tc_bench::alloc::peak_bytes().saturating_sub(before);
        table.push_row(vec![
            dataset.name().to_string(),
            fmt_secs(tree.stats().build_secs),
            format_bytes(peak),
            format_bytes(tree.heap_size()),
            fmt_count(tree.num_nodes()),
            fmt_count(tree.max_depth()),
        ]);
    }
    table.print();
}
