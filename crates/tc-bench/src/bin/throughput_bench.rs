//! Parallel-throughput telemetry: the offline phases (TCFI mining,
//! TC-Tree construction) across a threads × network-size grid, plus the
//! sustained-load serving baseline the ROADMAP's "query-serving
//! benchmarks" item asks for.
//!
//! Three sections:
//!
//! * **mining** — serial `TcfiMiner` vs the level-barrier pool
//!   (`LevelBarrierTcfiMiner`) vs the work-stealing miner
//!   (`ParallelTcfiMiner`) at every thread count, with result equality
//!   asserted against the serial reference on every cell; the headline
//!   ratio `ws_vs_barrier_t<T>` records how much the barrier costs;
//! * **indexing** — `TcTreeBuilder` wall-clock per thread count (node
//!   arenas are byte-identical by construction, asserted here);
//! * **serving** — concurrent QBA/QBP clients hammering one shared
//!   `SegmentTcTree`, reporting p50/p99 latency and aggregate QPS.
//!
//! With `--json <path>` everything lands in a machine-readable report.
//! `host_parallelism` is always recorded: thread counts above it measure
//! scheduling overhead, not parallel speedup — read speedups against it
//! (the committed `BENCH_main.json` baseline was produced on a 1-core
//! container, so its ratios hover near 1.0 by construction).

use tc_bench::report::JsonReport;
use tc_bench::{build_dataset, fmt_count, fmt_secs, percentile, BenchArgs, Dataset, Table};
use tc_core::{LevelBarrierTcfiMiner, Miner, MiningResult, ParallelTcfiMiner, TcfiMiner};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::SegmentTcTree;
use tc_txdb::Pattern;
use tc_util::Stopwatch;

/// Mining threshold: low enough for multi-level frontiers on SYN.
const ALPHA: f64 = 0.1;

fn main() {
    let args = BenchArgs::from_env();
    let grid = args.thread_grid(&[1, 2, 4, 8]);
    // Offline-phase cells take the fastest of `reps` runs: single-shot
    // wall-clocks on shared runners swing ±20%, and the minimum is the
    // stablest estimator of the true cost.
    let reps = if args.quick { 1 } else { 3 };
    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = JsonReport::new("throughput");
    json.push("host", "parallelism", host as f64);
    println!("# Throughput — host parallelism {host}, threads {grid:?}");

    // ---- Mining grid ---------------------------------------------------
    // SYN sizes: largest last — its tree feeds the later sections.
    let sizes: Vec<(String, f64)> = if args.quick {
        vec![
            ("SYN-S".into(), 0.12 * args.scale),
            ("SYN-M".into(), 0.25 * args.scale),
        ]
    } else {
        vec![
            ("SYN-S".into(), 0.25 * args.scale),
            ("SYN-M".into(), 0.5 * args.scale),
            ("SYN-L".into(), args.scale),
        ]
    };

    let mut largest = None;
    for (name, scale) in &sizes {
        let net = build_dataset(Dataset::Syn, *scale);
        println!(
            "\n## Mining — {name}: {} vertices, {} edges",
            fmt_count(net.num_vertices()),
            fmt_count(net.num_edges())
        );
        let timed = |miner: &dyn Miner| -> (f64, MiningResult) {
            let mut best = f64::INFINITY;
            let mut result = None;
            for _ in 0..reps {
                let sw = Stopwatch::start();
                let r = miner.mine(&net, ALPHA);
                best = best.min(sw.elapsed_secs());
                result = Some(r);
            }
            (best, result.expect("reps >= 1"))
        };
        let (serial_secs, reference) = timed(&TcfiMiner::default());
        json.push(name, "mine_serial_secs", serial_secs);

        let mut table = Table::new(
            format!(
                "TCFI mining ({name}, α={ALPHA}, serial {})",
                fmt_secs(serial_secs)
            ),
            &["Threads", "Barrier", "WS", "WS speedup", "WS vs barrier"],
        );
        for &t in &grid {
            let (barrier_secs, barrier) = timed(&LevelBarrierTcfiMiner {
                max_len: usize::MAX,
                threads: t,
            });
            let (ws_secs, ws) = timed(&ParallelTcfiMiner {
                max_len: usize::MAX,
                threads: t,
            });
            assert!(
                reference.same_trusses(&barrier) && reference.same_trusses(&ws),
                "{name}: parallel miners diverged from serial TCFI at {t} threads"
            );
            json.push(name, format!("mine_barrier_t{t}_secs"), barrier_secs);
            json.push(name, format!("mine_ws_t{t}_secs"), ws_secs);
            json.push(name, format!("mine_ws_speedup_t{t}"), serial_secs / ws_secs);
            json.push(name, format!("ws_vs_barrier_t{t}"), barrier_secs / ws_secs);
            table.push_row(vec![
                t.to_string(),
                fmt_secs(barrier_secs),
                fmt_secs(ws_secs),
                format!("{:.2}x", serial_secs / ws_secs),
                format!("{:.2}x", barrier_secs / ws_secs),
            ]);
        }
        table.print();
        largest = Some((name.clone(), net));
    }
    let (large_name, net) = largest.expect("at least one mining size");

    // ---- Index-construction grid ---------------------------------------
    println!("\n## Indexing — {large_name}");
    let mut table = Table::new(
        format!("TC-Tree build ({large_name})"),
        &["Threads", "Build", "Speedup vs 1 thread"],
    );
    let mut reference: Option<(f64, TcTree)> = None;
    for &t in &grid {
        let mut secs = f64::INFINITY;
        let mut built = None;
        for _ in 0..reps {
            let sw = Stopwatch::start();
            let tree = TcTreeBuilder {
                threads: t,
                max_len: usize::MAX,
            }
            .build(&net);
            secs = secs.min(sw.elapsed_secs());
            built = Some(tree);
        }
        let tree = built.expect("reps >= 1");
        let base = match &reference {
            None => {
                reference = Some((secs, tree));
                reference.as_ref().unwrap().0
            }
            Some((base, ref_tree)) => {
                // Byte-level equality through the segment writer — the
                // builders' contract is identical arenas, not just counts.
                let serialize = |tree: &TcTree| {
                    let mut buf = Vec::new();
                    tc_store::save_tree_segment(tree, &mut buf).expect("serialize tree");
                    buf
                };
                assert_eq!(
                    serialize(ref_tree),
                    serialize(&tree),
                    "{large_name}: tree construction diverged at {t} threads"
                );
                *base
            }
        };
        json.push(&large_name, format!("index_build_t{t}_secs"), secs);
        table.push_row(vec![
            t.to_string(),
            fmt_secs(secs),
            format!("{:.2}x", base / secs),
        ]);
    }
    table.print();
    let tree = reference.expect("built at least once").1;

    // ---- Sustained serving load ----------------------------------------
    let mut bytes = Vec::new();
    tc_store::save_tree_segment(&tree, &mut bytes).expect("serialize tree");
    let seg = SegmentTcTree::from_bytes(bytes).expect("open segment tree");
    let clients = grid.iter().copied().max().unwrap_or(1);
    let per_client = if args.quick { 400 } else { 4000 };

    // A deterministic query mix: QBA at a sweep of thresholds, QBP over
    // the singleton patterns.
    let bound = seg.alpha_upper_bound().max(1e-9);
    let alphas: Vec<f64> = (0..8).map(|i| bound * (i as f64 + 0.5) / 8.0).collect();
    let singles: Vec<Pattern> = (1..=seg.num_nodes() as u32)
        .map(|id| seg.pattern(id).clone())
        .filter(|p| p.len() == 1)
        .collect();

    let sw = Stopwatch::start();
    let mut latencies: Vec<(Vec<f64>, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (seg, alphas, singles) = (&seg, &alphas, &singles);
                scope.spawn(move || {
                    let mut qba = Vec::with_capacity(per_client / 2);
                    let mut qbp = Vec::with_capacity(per_client / 2);
                    for i in 0..per_client {
                        // Interleave QBA and QBP, each client phase-shifted.
                        // `pick / 2` strides through the whole alpha sweep /
                        // pattern pool: `pick` itself has fixed parity per
                        // branch and would only ever touch half of either.
                        let pick = c + i;
                        if pick % 2 == 0 || singles.is_empty() {
                            let alpha = alphas[(pick / 2) % alphas.len()];
                            let sw = Stopwatch::start();
                            std::hint::black_box(
                                seg.query_by_alpha(alpha).expect("QBA under load"),
                            );
                            qba.push(sw.elapsed_secs());
                        } else {
                            let q = &singles[(pick / 2) % singles.len()];
                            let sw = Stopwatch::start();
                            std::hint::black_box(seg.query_by_pattern(q).expect("QBP under load"));
                            qbp.push(sw.elapsed_secs());
                        }
                    }
                    (qba, qbp)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving client panicked"))
            .collect()
    });
    let wall = sw.elapsed_secs();
    let total = clients * per_client;

    let mut qba: Vec<f64> = latencies
        .iter_mut()
        .flat_map(|(a, _)| a.drain(..))
        .collect();
    let mut qbp: Vec<f64> = latencies
        .iter_mut()
        .flat_map(|(_, b)| b.drain(..))
        .collect();
    qba.sort_unstable_by(f64::total_cmp);
    qbp.sort_unstable_by(f64::total_cmp);

    println!("\n## Serving — {large_name}, shared SegmentTcTree");
    let mut table = Table::new(
        format!("Sustained load ({clients} clients × {per_client} queries)"),
        &["Metric", "Value"],
    );
    let qps = total as f64 / wall;
    table.push_row(vec!["aggregate QPS".into(), format!("{qps:.0}")]);
    table.push_row(vec!["QBA p50".into(), fmt_secs(percentile(&qba, 0.5))]);
    table.push_row(vec!["QBA p99".into(), fmt_secs(percentile(&qba, 0.99))]);
    table.push_row(vec!["QBP p50".into(), fmt_secs(percentile(&qbp, 0.5))]);
    table.push_row(vec!["QBP p99".into(), fmt_secs(percentile(&qbp, 0.99))]);
    table.print();
    json.push("serving", "serve_clients", clients as f64);
    json.push("serving", "serve_total_queries", total as f64);
    json.push("serving", "serve_wall_secs", wall);
    json.push("serving", "serve_qps", qps);
    json.push("serving", "serve_qba_p50_secs", percentile(&qba, 0.5));
    json.push("serving", "serve_qba_p99_secs", percentile(&qba, 0.99));
    json.push("serving", "serve_qbp_p50_secs", percentile(&qbp, 0.5));
    json.push("serving", "serve_qbp_p99_secs", percentile(&qbp, 0.99));

    if let Some(path) = &args.json {
        json.write_to_path(path).expect("write json report");
        println!(
            "\nwrote {} telemetry datapoints to {}",
            json.len(),
            path.display()
        );
    }
}
