//! `bench_compare` — the CI bench-telemetry gate.
//!
//! ```text
//! bench_compare --baseline BENCH_main.json \
//!     [--tolerance F] [--merge-out BENCH_pr.json] current1.json [current2.json …]
//! ```
//!
//! Merges the per-binary telemetry reports of the current run into one
//! `combined` report (each group prefixed with its bench name, e.g.
//! `storage:BK`), optionally writes it (`--merge-out`, CI uploads it as
//! the `BENCH_pr` artifact), and compares every tracked metric against
//! the committed baseline. Exit code 1 on any regression beyond
//! tolerance, 2 on usage/parse errors, 0 otherwise.
//!
//! ## What is gated, and how hard
//!
//! The baseline is committed from one machine and checked on another, so
//! the gate only trips on signals that survive a hardware change:
//!
//! * `*_bytes` — deterministic artifact sizes; ±10%.
//! * `*_secs` at or above 1 ms — catastrophic-slowdown guard; 5× band.
//!   Sub-millisecond timings are reported but never gated (they are
//!   scheduler noise at smoke scale).
//! * `*_qps` — throughput floor; 4× band.
//! * speedup metrics (`*_speedup*`) — gated (higher-is-better, 2× band)
//!   **only when both reports record the same `host`/`parallelism`**: a
//!   parallel speedup measured on an 8-core baseline host is meaningless
//!   on a 1-core PR runner, so on a core-count mismatch these downgrade
//!   to informational (with a printed note). Other ratios
//!   (`ws_vs_barrier_*`) and counts are always trajectory-only.
//! * a tracked baseline metric *missing* from the current run fails —
//!   silently dropping a bench section must not pass the gate.
//!
//! `--tolerance F` overrides every band with `F` (as a fraction, applied
//! in the metric's harmful direction) — useful for the injected-regression
//! self-test and for strict same-machine comparisons.

use std::path::PathBuf;
use std::process::ExitCode;
use tc_bench::report::JsonReport;
use tc_bench::{fmt_f64, Table};

struct Args {
    baseline: PathBuf,
    currents: Vec<PathBuf>,
    merge_out: Option<PathBuf>,
    tolerance: Option<f64>,
}

fn usage(msg: &str) -> ExitCode {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: bench_compare --baseline <BENCH_main.json> [--tolerance <f64>] \
         [--merge-out <BENCH_pr.json>] <current.json> [<current.json> …]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut currents = Vec::new();
    let mut merge_out = None;
    let mut tolerance = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--merge-out" => {
                merge_out = Some(PathBuf::from(it.next().ok_or("--merge-out needs a path")?))
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a value")?;
                tolerance = Some(
                    v.parse::<f64>()
                        .map_err(|_| format!("bad --tolerance '{v}'"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            path => currents.push(PathBuf::from(path)),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        currents,
        merge_out,
        tolerance,
    })
}

/// Merges per-binary reports into one `combined` report, prefixing each
/// group with its bench name. Already-combined inputs keep their groups.
fn merge(reports: &[JsonReport]) -> JsonReport {
    let mut out = JsonReport::new("combined");
    for report in reports {
        for (group, metric, value) in report.metrics() {
            let group = if report.bench() == "combined" {
                group.clone()
            } else {
                format!("{}:{}", report.bench(), group)
            };
            out.push(group, metric.clone(), *value);
        }
    }
    out
}

/// The gate policy for one metric, derived from its name.
enum Policy {
    /// Lower is better; fail when `current > baseline * (1 + tol)`.
    LowerIsBetter(f64),
    /// Higher is better; fail when `current < baseline * (1 - tol)`.
    HigherIsBetter(f64),
    /// Recorded for the trajectory, never gated.
    Informational,
}

fn policy(metric: &str, baseline: f64, hosts_match: bool) -> Policy {
    if metric.ends_with("_bytes") {
        Policy::LowerIsBetter(0.10)
    } else if metric.ends_with("_qps") {
        Policy::HigherIsBetter(0.75)
    } else if metric.ends_with("_secs") {
        // Sub-millisecond smoke timings are scheduler noise; gating them
        // would make the job flaky without protecting anything.
        if baseline >= 1e-3 {
            Policy::LowerIsBetter(4.0)
        } else {
            Policy::Informational
        }
    } else if metric.contains("_speedup") {
        // A speedup ratio only transfers between hosts with the same
        // core count; across different hosts it is recorded, not gated.
        if hosts_match {
            Policy::HigherIsBetter(0.50)
        } else {
            Policy::Informational
        }
    } else {
        // Other ratios (ws_vs_barrier) and counts: trajectory only.
        Policy::Informational
    }
}

/// The `host`/`parallelism` datapoint of a merged report — recorded by
/// every bench binary as the core count it ran on. `None` for reports
/// predating the metric.
fn host_parallelism(report: &JsonReport) -> Option<f64> {
    report
        .metrics()
        .iter()
        .find(|(g, m, _)| m == "parallelism" && (g == "host" || g.ends_with(":host")))
        .map(|(_, _, v)| *v)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    if args.currents.is_empty() {
        return usage("at least one current report is required");
    }

    let baseline = match JsonReport::load_from_path(&args.baseline) {
        Ok(r) => r,
        Err(e) => return usage(&e),
    };
    let mut currents = Vec::new();
    for path in &args.currents {
        match JsonReport::load_from_path(path) {
            Ok(r) => currents.push(r),
            Err(e) => return usage(&e),
        }
    }
    let current = merge(&currents);
    if let Some(path) = &args.merge_out {
        if let Err(e) = current.write_to_path(path) {
            return usage(&format!("writing {}: {e}", path.display()));
        }
        println!("wrote merged report to {}", path.display());
    }
    let baseline = merge(std::slice::from_ref(&baseline));

    // Speedup-ratio gates only hold between same-shaped hosts.
    let base_host = host_parallelism(&baseline);
    let cur_host = host_parallelism(&current);
    let hosts_match = matches!((base_host, cur_host), (Some(b), Some(c)) if b == c);
    if !hosts_match {
        let show = |h: Option<f64>| h.map_or("unrecorded".to_string(), |v| format!("{v:.0} cores"));
        println!(
            "host parallelism differs (baseline: {}, current: {}) — speedup ratios are \
             informational this run",
            show(base_host),
            show(cur_host)
        );
    }

    let lookup: std::collections::HashMap<(&str, &str), f64> = current
        .metrics()
        .iter()
        .map(|(g, m, v)| ((g.as_str(), m.as_str()), *v))
        .collect();
    let tracked: std::collections::HashSet<(&str, &str)> = baseline
        .metrics()
        .iter()
        .map(|(g, m, _)| (g.as_str(), m.as_str()))
        .collect();

    let mut table = Table::new(
        format!("Telemetry vs {}", args.baseline.display()),
        &["Group", "Metric", "Baseline", "Current", "Δ", "Status"],
    );
    let mut regressions = 0usize;
    let mut gated = 0usize;
    for (group, metric, base) in baseline.metrics() {
        let row = |cur: String, delta: String, status: &str| {
            vec![
                group.clone(),
                metric.clone(),
                fmt_f64(*base),
                cur,
                delta,
                status.to_string(),
            ]
        };
        let Some(&cur) = lookup.get(&(group.as_str(), metric.as_str())) else {
            regressions += 1;
            table.push_row(row("—".into(), "—".into(), "MISSING"));
            continue;
        };
        if base.is_nan() {
            // The baseline never measured this — nothing to hold the
            // current run to.
            table.push_row(row(fmt_f64(cur), "—".into(), "skipped (nan baseline)"));
            continue;
        }
        if cur.is_nan() {
            // A real baseline value degenerated to null in the current
            // run (e.g. an empty query pool): that is a dropped metric,
            // and dropped metrics must not pass the gate.
            regressions += 1;
            table.push_row(row("null".into(), "—".into(), "REGRESSED (nan)"));
            continue;
        }
        let delta = if *base != 0.0 {
            format!("{:+.1}%", (cur - base) / base * 100.0)
        } else {
            "—".into()
        };
        let verdict = match policy(metric, *base, hosts_match) {
            Policy::Informational => "info",
            Policy::LowerIsBetter(tol) => {
                gated += 1;
                let tol = args.tolerance.unwrap_or(tol);
                if cur > base * (1.0 + tol) {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                }
            }
            Policy::HigherIsBetter(tol) => {
                gated += 1;
                let tol = args.tolerance.unwrap_or(tol);
                if cur < base * (1.0 - tol) {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                }
            }
        };
        table.push_row(row(fmt_f64(cur), delta, verdict));
    }
    table.print();

    let new_metrics: Vec<String> = current
        .metrics()
        .iter()
        .filter(|(g, m, _)| !tracked.contains(&(g.as_str(), m.as_str())))
        .map(|(g, m, _)| format!("{g}/{m}"))
        .collect();
    if !new_metrics.is_empty() {
        println!(
            "\n{} new metric(s) not in the baseline (refresh BENCH_main.json to track): {}",
            new_metrics.len(),
            new_metrics.join(", ")
        );
    }

    println!(
        "\ncompared {} tracked metrics ({} gated): {} regression(s)",
        baseline.metrics().len(),
        gated,
        regressions
    );
    if regressions > 0 {
        eprintln!("bench-telemetry gate FAILED");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
