//! Runs every experiment binary in sequence — one command to regenerate
//! all tables and figures.
//!
//! Equivalent to invoking each binary yourself; accepts and forwards the
//! shared flags (`--scale`, `--quick`, `--dataset`).

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table2_stats",
    "fig3_params",
    "fig4_scalability",
    "table3_indexing",
    "fig5_query",
    "case_study",
    "accuracy",
    "ablation_pruning",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");

    for exp in EXPERIMENTS {
        println!("\n{}", "=".repeat(72));
        println!("== {exp}");
        println!("{}", "=".repeat(72));
        let path = bin_dir.join(exp);
        let status = Command::new(&path)
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("experiment {exp} failed with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
