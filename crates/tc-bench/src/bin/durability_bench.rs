//! Durability telemetry: WAL append throughput per fsync policy, group
//! commit under concurrent appenders, and recovery/checkpoint latency.
//!
//! All sections run against real files in a scratch directory — the point
//! is the actual `write + fsync` path `tc ingest` rides, not an in-memory
//! simulation. Sections:
//!
//! * **append** — N `AddEdge` records appended under each durability
//!   policy: `always` (one fsync per acked record), `batch8`/`batch64`
//!   (group commit at a record/delay threshold), and `end` (no syncs
//!   until a final `flush`). Reported per policy: records/s and syncs
//!   issued. Throughput is fsync-bound and varies ~100× across storage
//!   hardware, so these are trajectory metrics (`_per_sec`), not gated.
//! * **group commit** — 4 threads share one `always`-mode log; the
//!   leader/follower protocol must coalesce their acks into far fewer
//!   than N fsyncs.
//! * **recovery** — scan + replay time for logs of increasing length,
//!   plus the `checkpoint` fold (open, fold into a fresh segment, reset
//!   the log) on the longest one.
//!
//! `wal_bytes` is deterministic for a fixed record count and is gated at
//! ±10% like the other artifact sizes: an accidental frame-format
//! inflation fails the telemetry gate.

use std::path::Path;
use std::time::Duration;

use tc_bench::report::JsonReport;
use tc_bench::{fmt_count, fmt_secs, BenchArgs, Table};
use tc_store::wal::{checkpoint, WalStore};
use tc_store::{Durability, WalRecord};
use tc_util::Stopwatch;

/// Appender threads in the group-commit section.
const GROUP_THREADS: usize = 4;

/// The `i`-th benchmark record: an edge walk over a 64-vertex clique,
/// never a self-loop, deterministic byte-for-byte.
fn record(i: usize) -> WalRecord {
    let u = (i % 64) as u32;
    let v = 64 + (i / 64 % 64) as u32;
    WalRecord::AddEdge { u, v }
}

fn open_fresh(dir: &Path, name: &str, durability: Durability) -> (WalStore, std::path::PathBuf) {
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    let store = WalStore::open(None, &path, durability).expect("open fresh wal");
    (store, path)
}

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_threads();
    let n = if args.quick { 400 } else { 2000 };
    let recovery_lens: &[usize] = if args.quick {
        &[200, 1000]
    } else {
        &[1000, 5000]
    };

    let scratch = std::env::temp_dir().join(format!("tc_durability_bench_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let mut json = JsonReport::new("durability");

    println!("# durability_bench — WAL append/fsync policies and crash recovery ({n} records)");

    // ---- Append throughput per fsync policy ----------------------------
    let policies: [(&str, Durability); 4] = [
        ("always", Durability::Always),
        (
            "batch8",
            Durability::Batch {
                max_records: 8,
                max_delay: Duration::from_millis(5),
            },
        ),
        (
            "batch64",
            Durability::Batch {
                max_records: 64,
                max_delay: Duration::from_millis(50),
            },
        ),
        // Nothing syncs until the final flush — the upper bound on
        // append throughput this storage offers.
        (
            "end",
            Durability::Batch {
                max_records: usize::MAX,
                max_delay: Duration::from_secs(3600),
            },
        ),
    ];
    let mut table = Table::new(
        format!("WAL append throughput ({n} AddEdge records, real files)"),
        &["Policy", "records/s", "fsyncs", "file size"],
    );
    for (name, durability) in policies {
        let (store, path) = open_fresh(&scratch, &format!("append_{name}.wal"), durability);
        let sw = Stopwatch::start();
        for i in 0..n {
            store.append(&record(i)).expect("append");
        }
        store.flush().expect("final flush");
        let secs = sw.elapsed_secs();
        let per_sec = n as f64 / secs;
        let syncs = store.wal().sync_count();
        let bytes = store.wal().len_bytes().expect("wal length");
        assert_eq!(store.wal().durable_seqno(), n as u64, "all records durable");
        drop(store);

        json.push("wal", format!("append_{name}_per_sec"), per_sec);
        json.push("wal", format!("append_{name}_syncs"), syncs as f64);
        if name == "always" {
            // One policy's file stands in for all: the frame bytes are
            // identical, only the fsync cadence differs.
            json.push("wal", "wal_bytes", bytes as f64);
        }
        table.push_row(vec![
            name.into(),
            format!("{per_sec:.0}"),
            syncs.to_string(),
            fmt_count(bytes as usize),
        ]);
        std::fs::remove_file(&path).ok();
    }
    table.print();

    // ---- Group commit: concurrent appenders share fsyncs ---------------
    let (store, path) = open_fresh(&scratch, "group.wal", Durability::Always);
    let per_thread = n / GROUP_THREADS;
    let sw = Stopwatch::start();
    std::thread::scope(|scope| {
        for t in 0..GROUP_THREADS {
            let store = &store;
            scope.spawn(move || {
                for i in 0..per_thread {
                    store.append(&record(t * per_thread + i)).expect("append");
                }
            });
        }
    });
    let secs = sw.elapsed_secs();
    let total = (per_thread * GROUP_THREADS) as u64;
    let group_per_sec = total as f64 / secs;
    let group_syncs = store.wal().sync_count();
    assert_eq!(store.wal().durable_seqno(), total);
    assert!(
        group_syncs <= total,
        "group commit must never fsync more than once per record"
    );
    drop(store);
    std::fs::remove_file(&path).ok();
    println!(
        "\ngroup commit: {GROUP_THREADS} threads, {} records/s, {} fsyncs for {} acked records",
        group_per_sec as u64,
        fmt_count(group_syncs as usize),
        fmt_count(total as usize)
    );
    json.push(
        "wal",
        format!("append_group{GROUP_THREADS}_per_sec"),
        group_per_sec,
    );
    json.push(
        "wal",
        format!("append_group{GROUP_THREADS}_syncs"),
        group_syncs as f64,
    );

    // ---- Recovery time vs log length, and the checkpoint fold ----------
    let mut table = Table::new(
        "Recovery and checkpoint",
        &["Log records", "recover", "checkpoint"],
    );
    for (pos, &len) in recovery_lens.iter().enumerate() {
        let (store, path) = open_fresh(
            &scratch,
            &format!("recover_{len}.wal"),
            Durability::Batch {
                max_records: usize::MAX,
                max_delay: Duration::from_secs(3600),
            },
        );
        for i in 0..len {
            store.append(&record(i)).expect("append");
        }
        store.flush().expect("flush");
        drop(store);

        let sw = Stopwatch::start();
        let store = WalStore::open(None, &path, Durability::Always).expect("recover");
        let recover_secs = sw.elapsed_secs();
        assert_eq!(store.recovered_records(), len);
        assert_eq!(store.truncated_bytes(), 0);
        drop(store);
        json.push("recovery", format!("recovery_{len}_secs"), recover_secs);

        // Checkpoint the longest log only — one fold datapoint is enough.
        let checkpoint_cell = if pos == recovery_lens.len() - 1 {
            let out = scratch.join("checkpoint.seg");
            let sw = Stopwatch::start();
            let report = checkpoint(None, &path, &out).expect("checkpoint");
            let fold_secs = sw.elapsed_secs();
            assert_eq!(report.folded_records, len as u64);
            let reopened = WalStore::open(Some(&out), &path, Durability::Always)
                .expect("reopen after checkpoint");
            assert_eq!(reopened.recovered_records(), 1, "marker-only log");
            drop(reopened);
            std::fs::remove_file(&out).ok();
            json.push("recovery", "checkpoint_secs", fold_secs);
            fmt_secs(fold_secs)
        } else {
            "—".into()
        };
        table.push_row(vec![
            fmt_count(len),
            fmt_secs(recover_secs),
            checkpoint_cell,
        ]);
        std::fs::remove_file(&path).ok();
    }
    table.print();

    std::fs::remove_dir_all(&scratch).ok();

    if let Some(path) = &args.json {
        json.write_to_path(path).expect("write json report");
        println!(
            "\nwrote {} telemetry datapoints to {}",
            json.len(),
            path.display()
        );
    }
}
