//! `serve_bench` — the QPS-vs-client-count sweep against a **real**
//! `tc-serve` daemon over loopback TCP.
//!
//! `throughput_bench`'s serving section simulates clients in-process
//! (direct method calls on a shared `SegmentTcTree`); this binary
//! measures the end-to-end path instead: a [`tc_serve::Server`] bound to
//! `127.0.0.1:0`, real sockets, the line protocol, and the blocking
//! [`tc_serve::ServeClient`] — the same stack `tc query --remote` rides.
//!
//! Sections:
//!
//! * **sweep** — for each client count in the `--threads` grid (default
//!   `1,2,4,8`), that many concurrent clients each run a deterministic
//!   QBA/QBP mix over one session; reported per count: aggregate QPS,
//!   nearest-rank p50/p99 round-trip latency (`tc_bench::percentile`).
//! * **admission** — a second daemon with `--max-inflight 1` is probed
//!   while its only slot is held: the probe must be answered `BUSY`, and
//!   the slot must readmit after release. Failures abort the bench, so
//!   the telemetry only ever records a daemon whose admission control
//!   works.
//! * **http** — the same client-count sweep through the HTTP/JSON
//!   gateway (`GET /qba`, `GET /qbp` over keep-alive
//!   [`tc_serve::HttpClient`] sessions), so the gateway's parse/encode
//!   overhead relative to the line protocol stays measured.
//! * **batch** — `POST /query` pipelining: one client, batch sizes 1, 8,
//!   and 64, reported as queries/second and per-batch round-trip p50 —
//!   the amortisation curve of request framing. The section ends by
//!   scraping `/metrics` and asserting the per-verb counters actually
//!   moved (a bench of an unobservable daemon proves nothing).
//! * **sharded** — the scatter-gather tier: the tree split 1/2/4 ways
//!   (`tc_store::split_tree`), one daemon per shard, a [`tc_router`]
//!   gateway over them, and a fixed HTTP client pool driving the same
//!   QBA/QBP mix through the router. Reported per shard count:
//!   aggregate QPS and p50, so the fan-out overhead (1 shard) and the
//!   scatter win (2/4 shards) both stay on the record. The router's
//!   `/metrics` is scraped and its fan-out counters must have moved.
//!
//! With `--json <path>` everything lands in the `tc-bench/v1` report
//! (bench name `serving`, so `bench_compare` merges the groups as
//! `serving:*`). Server workers are fixed at 4 so the sweep varies only
//! the client count; `host_parallelism` is recorded for reading the
//! numbers (a 1-core container serialises everything by construction).

use tc_bench::report::JsonReport;
use tc_bench::{build_dataset, fmt_count, fmt_secs, percentile, BenchArgs, Dataset, Table};
use tc_index::TcTreeBuilder;
use tc_serve::{HttpClient, ServeClient, ServeConfig, Server};
use tc_store::SegmentTcTree;
use tc_util::Stopwatch;

/// Server-side worker threads — constant across the sweep so the client
/// count is the only variable.
const WORKERS: usize = 4;

fn open_segment_copy(bytes: &[u8]) -> SegmentTcTree {
    SegmentTcTree::from_bytes(bytes.to_vec()).expect("open segment tree")
}

fn main() {
    let args = BenchArgs::from_env();
    let clients_grid = args.thread_grid(&[1, 2, 4, 8]);
    let per_client = if args.quick { 150 } else { 1500 };
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    // One tree serves the whole sweep: SYN at the configured scale.
    let net = build_dataset(Dataset::Syn, 0.5 * args.scale);
    let tree = TcTreeBuilder {
        threads: host,
        max_len: usize::MAX,
    }
    .build(&net);
    let mut seg_bytes = Vec::new();
    tc_store::save_tree_segment(&tree, &mut seg_bytes).expect("serialize tree");

    let mut json = JsonReport::new("serving");
    json.push("host", "parallelism", host as f64);
    println!(
        "# serve_bench — daemon sweep over loopback ({} vertices, {} tree nodes, host parallelism {host})",
        fmt_count(net.num_vertices()),
        fmt_count(tree.num_nodes())
    );

    // ---- QPS-vs-client-count sweep -------------------------------------
    let server = Server::bind(
        open_segment_copy(&seg_bytes),
        "127.0.0.1:0",
        ServeConfig {
            workers: WORKERS,
            max_inflight: clients_grid.iter().copied().max().unwrap_or(1) * 4,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback daemon");
    let addr = server.local_addr().expect("local addr").to_string();
    let daemon = std::thread::spawn(move || server.run().expect("daemon run"));

    // The deterministic query mix of throughput_bench's serving section:
    // QBA over an alpha sweep interleaved with QBP over the singleton
    // patterns, phase-shifted per client.
    let bound = tree.alpha_upper_bound().max(1e-9);
    let alphas: Vec<f64> = (0..8).map(|i| bound * (i as f64 + 0.5) / 8.0).collect();
    let singles: Vec<Vec<u32>> = (1..=tree.num_nodes() as u32)
        .map(|id| {
            tree.node(id)
                .pattern
                .iter()
                .map(|i| i.0)
                .collect::<Vec<u32>>()
        })
        .filter(|p| p.len() == 1)
        .collect();

    let mut table = Table::new(
        format!("QPS vs client count ({WORKERS} server workers, {per_client} queries/client)"),
        &["Clients", "QPS", "p50", "p99"],
    );
    for &clients in &clients_grid {
        let sw = Stopwatch::start();
        let mut latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (addr, alphas, singles) = (&addr, &alphas, &singles);
                    scope.spawn(move || {
                        let mut client = ServeClient::connect(addr).expect("connect sweep client");
                        let mut lat = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let pick = c + i;
                            let sw = Stopwatch::start();
                            if pick % 2 == 0 || singles.is_empty() {
                                let alpha = alphas[(pick / 2) % alphas.len()];
                                client.qba(alpha).expect("QBA under load");
                            } else {
                                let q = &singles[(pick / 2) % singles.len()];
                                client.qbp(q).expect("QBP under load");
                            }
                            lat.push(sw.elapsed_secs());
                        }
                        client.quit().expect("clean session end");
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("sweep client panicked"))
                .collect()
        });
        let wall = sw.elapsed_secs();
        latencies.sort_unstable_by(f64::total_cmp);
        let total = clients * per_client;
        let qps = total as f64 / wall;
        let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
        json.push("sweep", format!("serve_c{clients}_qps"), qps);
        json.push("sweep", format!("serve_c{clients}_p50_secs"), p50);
        json.push("sweep", format!("serve_c{clients}_p99_secs"), p99);
        table.push_row(vec![
            clients.to_string(),
            format!("{qps:.0}"),
            fmt_secs(p50),
            fmt_secs(p99),
        ]);
    }
    table.print();

    // Stop the sweep daemon and fold its counters into the telemetry.
    ServeClient::connect(&addr)
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("daemon shutdown");
    let stats = daemon.join().expect("daemon thread");
    assert_eq!(
        stats.rejected_busy, 0,
        "sweep must stay under the admission limit"
    );
    json.push("sweep", "serve_sessions_total", stats.admitted as f64);
    json.push(
        "sweep",
        "serve_queries_total",
        stats.queries_served() as f64,
    );

    // ---- Admission-control probe ---------------------------------------
    // A daemon with one admission slot: holding it must turn the next
    // connection into an explicit BUSY, and releasing it must readmit.
    let server = Server::bind(
        open_segment_copy(&seg_bytes),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            max_inflight: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind probe daemon");
    let addr = server.local_addr().expect("local addr").to_string();
    let daemon = std::thread::spawn(move || server.run().expect("probe daemon run"));

    let mut holder = ServeClient::connect(&addr).expect("probe holder");
    holder.qba(0.0).expect("holder query");
    let busy = match ServeClient::connect(&addr) {
        Err(e) if e.is_busy() => true,
        Err(e) => panic!("expected BUSY from a full daemon, got error {e}"),
        Ok(_) => panic!("expected BUSY from a full daemon, got admitted"),
    };
    holder.quit().expect("release slot");
    // The slot frees at the server's next read tick; poll briefly.
    let mut readmitted = None;
    for _ in 0..200 {
        match ServeClient::connect(&addr) {
            Ok(c) => {
                readmitted = Some(c);
                break;
            }
            Err(e) if e.is_busy() => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("probe reconnect failed: {e}"),
        }
    }
    let client = readmitted.expect("slot never freed after QUIT");
    client.shutdown_server().expect("probe daemon shutdown");
    let probe_stats = daemon.join().expect("probe daemon thread");
    println!(
        "\nadmission probe: BUSY observed = {busy}, rejected_busy = {}",
        probe_stats.rejected_busy
    );
    json.push("admission", "serve_busy_probe_ok", 1.0);
    json.push(
        "admission",
        "serve_busy_rejections",
        probe_stats.rejected_busy as f64,
    );

    // ---- HTTP gateway sweep --------------------------------------------
    let server = Server::bind(
        open_segment_copy(&seg_bytes),
        "127.0.0.1:0",
        ServeConfig {
            workers: WORKERS,
            max_inflight: clients_grid.iter().copied().max().unwrap_or(1) * 4,
            http_addr: Some("127.0.0.1:0".to_string()),
            ..ServeConfig::default()
        },
    )
    .expect("bind http daemon");
    let http_tcp_addr = server.local_addr().expect("local addr").to_string();
    let http_addr = server
        .local_http_addr()
        .expect("http gateway configured")
        .expect("http local addr")
        .to_string();
    let daemon = std::thread::spawn(move || server.run().expect("http daemon run"));

    let mut table = Table::new(
        format!("HTTP gateway QPS vs client count ({WORKERS} server workers, {per_client} requests/client)"),
        &["Clients", "QPS", "p50", "p99"],
    );
    for &clients in &clients_grid {
        let sw = Stopwatch::start();
        let mut latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let (http_addr, alphas, singles) = (&http_addr, &alphas, &singles);
                    scope.spawn(move || {
                        let mut client =
                            HttpClient::connect(http_addr).expect("connect http client");
                        let mut lat = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let pick = c + i;
                            let sw = Stopwatch::start();
                            let resp = if pick % 2 == 0 || singles.is_empty() {
                                let alpha = alphas[(pick / 2) % alphas.len()];
                                client.get(&format!("/qba?alpha={alpha}"))
                            } else {
                                let q = &singles[(pick / 2) % singles.len()];
                                let items =
                                    q.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                                client.get(&format!("/qbp?items={items}"))
                            };
                            assert!(
                                resp.expect("http request under load").is_ok(),
                                "http error under load"
                            );
                            lat.push(sw.elapsed_secs());
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("http client panicked"))
                .collect()
        });
        let wall = sw.elapsed_secs();
        latencies.sort_unstable_by(f64::total_cmp);
        let qps = (clients * per_client) as f64 / wall;
        let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
        json.push("http", format!("http_c{clients}_qps"), qps);
        json.push("http", format!("http_c{clients}_p50_secs"), p50);
        json.push("http", format!("http_c{clients}_p99_secs"), p99);
        table.push_row(vec![
            clients.to_string(),
            format!("{qps:.0}"),
            fmt_secs(p50),
            fmt_secs(p99),
        ]);
    }
    table.print();

    // ---- Batch-pipeline sweep ------------------------------------------
    let batches = if args.quick { 20 } else { 200 };
    let mut table = Table::new(
        format!("POST /query batch pipelining ({batches} batches/size, single client)"),
        &["Batch size", "queries/s", "batch p50"],
    );
    let mut client = HttpClient::connect(&http_addr).expect("connect batch client");
    for &size in &[1usize, 8, 64] {
        let body = format!(
            "[{}]",
            (0..size)
                .map(|i| format!("{{\"alpha\":{}}}", alphas[i % alphas.len()]))
                .collect::<Vec<_>>()
                .join(",")
        );
        let mut lat = Vec::with_capacity(batches);
        let sw = Stopwatch::start();
        for _ in 0..batches {
            let one = Stopwatch::start();
            let resp = client.post("/query", &body).expect("batch post");
            assert!(resp.is_ok(), "batch error: {}", resp.body);
            lat.push(one.elapsed_secs());
        }
        let wall = sw.elapsed_secs();
        lat.sort_unstable_by(f64::total_cmp);
        let qps = (batches * size) as f64 / wall;
        let p50 = percentile(&lat, 0.5);
        json.push("batch", format!("batch_b{size}_qps"), qps);
        json.push("batch", format!("batch_b{size}_p50_secs"), p50);
        table.push_row(vec![size.to_string(), format!("{qps:.0}"), fmt_secs(p50)]);
    }
    table.print();

    // The bench only counts if the daemon was observable while it ran:
    // scrape /metrics and require the per-verb counters to have moved.
    let metrics = client.get("/metrics").expect("scrape /metrics");
    assert!(metrics.is_ok(), "metrics scrape failed: {}", metrics.status);
    for needle in [
        "tcserve_requests_total{verb=\"qba\"}",
        "tcserve_requests_total{verb=\"batch\"}",
        "tcserve_request_latency_seconds_count{verb=\"qba\"}",
    ] {
        let line = metrics
            .body
            .lines()
            .find(|l| l.starts_with(needle))
            .unwrap_or_else(|| panic!("missing metric {needle}"));
        let value: f64 = line.rsplit(' ').next().unwrap().parse().expect("value");
        assert!(value > 0.0, "{needle} never moved");
    }
    json.push("http", "http_metrics_scrape_ok", 1.0);

    let handle_stats = {
        let shutdown = ServeClient::connect(&http_tcp_addr).expect("connect for http shutdown");
        shutdown.shutdown_server().expect("http daemon shutdown");
        daemon.join().expect("http daemon thread")
    };
    assert_eq!(
        handle_stats.rejected_busy, 0,
        "http sweep must stay under the admission limit"
    );

    // ---- Sharded scatter-gather sweep ----------------------------------
    // The same HTTP mix through a tc-router gateway over 1, 2, and 4
    // shard daemons. Client count is fixed so the shard count is the
    // only variable; 1 shard measures the pure fan-out overhead.
    let sharded_clients = 4usize;
    let per_client_sharded = if args.quick { 60 } else { 600 };
    let mut table = Table::new(
        format!(
            "Sharded serving QPS vs shard count ({sharded_clients} HTTP clients, \
             {per_client_sharded} requests/client)"
        ),
        &["Shards", "QPS", "p50"],
    );
    for &shard_count in &[1usize, 2, 4] {
        let mut daemons = Vec::new();
        let mut entries = Vec::new();
        for shard in
            tc_store::split_tree(&tree, tc_store::HashScheme::Crc32Item, shard_count as u32)
        {
            let mut bytes = Vec::new();
            tc_store::save_tree_segment(&shard, &mut bytes).expect("serialize shard");
            let server = Server::bind(
                SegmentTcTree::from_bytes(bytes).expect("open shard segment"),
                "127.0.0.1:0",
                ServeConfig {
                    workers: WORKERS,
                    max_inflight: sharded_clients * 4,
                    ..ServeConfig::default()
                },
            )
            .expect("bind shard daemon");
            entries.push(tc_store::ShardEntry {
                addr: server.local_addr().expect("shard addr").to_string(),
                path: String::new(),
            });
            daemons.push((
                server.handle(),
                std::thread::spawn(move || server.run().expect("shard daemon run")),
            ));
        }
        let map = tc_store::ShardMap {
            scheme: tc_store::HashScheme::Crc32Item,
            items: tc_store::level1_items(&tree),
            shards: entries,
        };
        let router = tc_router::Router::bind(
            map,
            "127.0.0.1:0",
            tc_router::RouterConfig {
                max_inflight: sharded_clients * 4,
                ..tc_router::RouterConfig::default()
            },
        )
        .expect("bind router");
        let router_addr = router.local_addr().expect("router addr").to_string();
        let router_handle = router.handle();
        let router_thread = std::thread::spawn(move || router.run().expect("router run"));

        let sw = Stopwatch::start();
        let mut latencies: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sharded_clients)
                .map(|c| {
                    let (router_addr, alphas, singles) = (&router_addr, &alphas, &singles);
                    scope.spawn(move || {
                        let mut client =
                            HttpClient::connect(router_addr).expect("connect router client");
                        let mut lat = Vec::with_capacity(per_client_sharded);
                        for i in 0..per_client_sharded {
                            let pick = c + i;
                            let sw = Stopwatch::start();
                            let resp = if pick % 2 == 0 || singles.is_empty() {
                                let alpha = alphas[(pick / 2) % alphas.len()];
                                client.get(&format!("/qba?alpha={alpha}"))
                            } else {
                                let q = &singles[(pick / 2) % singles.len()];
                                let items =
                                    q.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                                client.get(&format!("/qbp?items={items}"))
                            };
                            assert!(
                                resp.expect("router request under load").is_ok(),
                                "router error under load"
                            );
                            lat.push(sw.elapsed_secs());
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("router client panicked"))
                .collect()
        });
        let wall = sw.elapsed_secs();
        latencies.sort_unstable_by(f64::total_cmp);
        let qps = (sharded_clients * per_client_sharded) as f64 / wall;
        let p50 = percentile(&latencies, 0.5);
        json.push("sharded", format!("sharded_s{shard_count}_qps"), qps);
        json.push("sharded", format!("sharded_s{shard_count}_p50_secs"), p50);
        table.push_row(vec![
            shard_count.to_string(),
            format!("{qps:.0}"),
            fmt_secs(p50),
        ]);

        // Observability: the router must have fanned out to every shard
        // and seen none of them down.
        let prom = router_handle.prometheus();
        for shard in 0..shard_count {
            let needle = format!("tcrouter_fanout_total{{shard=\"{shard}\"}}");
            let line = prom
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("missing metric {needle}"));
            let value: f64 = line.rsplit(' ').next().unwrap().parse().expect("value");
            assert!(value > 0.0, "{needle} never moved");
        }
        assert!(
            prom.contains("tcrouter_shards_down 0"),
            "sharded sweep saw a shard down"
        );
        let router_stats = {
            router_handle.shutdown();
            router_thread.join().expect("router thread")
        };
        assert_eq!(router_stats.shard_errors, 0, "shard RPCs failed under load");
        for (handle, thread) in daemons {
            handle.shutdown();
            thread.join().expect("shard daemon thread");
        }
    }
    table.print();
    json.push("sharded", "sharded_metrics_scrape_ok", 1.0);

    if let Some(path) = &args.json {
        json.write_to_path(path).expect("write json report");
        println!(
            "\nwrote {} telemetry datapoints to {}",
            json.len(),
            path.display()
        );
    }
}
