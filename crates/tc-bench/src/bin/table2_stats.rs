//! Reproduces **Table 2**: statistics of the database networks.
//!
//! Paper columns: #Vertices, #Edges, #Transactions, #Items (total),
//! #Items (unique), for BK, GW, AMINER and SYN.

use tc_bench::{build_dataset, fmt_count, BenchArgs, Table};

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let mut table = Table::new(
        format!("Table 2 — dataset statistics (scale {})", args.scale),
        &[
            "Dataset",
            "#Vertices",
            "#Edges",
            "#Transactions",
            "#Items (total)",
            "#Items (unique)",
        ],
    );
    for dataset in args.datasets() {
        let net = build_dataset(dataset, args.scale);
        let s = net.stats();
        table.push_row(vec![
            dataset.name().to_string(),
            fmt_count(s.vertices),
            fmt_count(s.edges),
            fmt_count(s.transactions),
            fmt_count(s.items_total),
            fmt_count(s.items_unique),
        ]);
    }
    table.print();
}
