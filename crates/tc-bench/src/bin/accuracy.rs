//! Extra experiment (not in the paper): planted-community recovery.
//!
//! Quantifies the §7.1 claim that TCS trades accuracy for speed: on a
//! network with planted ground-truth communities, TCFI recovers everything
//! while TCS with growing `ε` loses the low-frequency themes. Reports
//! precision/recall/F1 per miner.

use tc_bench::{fmt_f64, BenchArgs, Table};
use tc_core::{Miner, TcfiMiner, TcsMiner};
use tc_data::planted::vertex_precision_recall;
use tc_data::{generate_planted, PlantedConfig};

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    // Two tiers of planted communities: strong themes (f = 0.9) and weak
    // themes (f = 0.25) that the ε-prefilter endangers.
    let strong = generate_planted(&PlantedConfig {
        communities: 4,
        community_size: (10.0 * args.scale).round().max(5.0) as usize,
        freq: 0.9,
        seed: 0xACC1,
        ..PlantedConfig::default()
    });
    // Weak themes sit at exactly f = 0.25 on every member (the generator
    // plants deterministically), so TCS with ε ≥ 0.25 *must* lose them —
    // the §7.1 accuracy/efficiency trade-off in its crispest form.
    let weak = generate_planted(&PlantedConfig {
        communities: 4,
        community_size: (10.0 * args.scale).round().max(5.0) as usize,
        freq: 0.25,
        transactions_per_vertex: 20,
        seed: 0xACC2,
        ..PlantedConfig::default()
    });

    for (label, planted, alpha) in [
        ("strong themes (f=0.9)", &strong, 0.5),
        ("weak themes (f=0.25)", &weak, 0.1),
    ] {
        let mut table = Table::new(
            format!("Planted-community recovery — {label}, alpha = {alpha}"),
            &["Miner", "Found", "Precision", "Recall", "F1"],
        );
        let miners: Vec<(String, Box<dyn Miner>)> = vec![
            ("TCFI".into(), Box::new(TcfiMiner::default())),
            ("TCS(eps=0.1)".into(), Box::new(TcsMiner::with_epsilon(0.1))),
            ("TCS(eps=0.2)".into(), Box::new(TcsMiner::with_epsilon(0.2))),
            ("TCS(eps=0.3)".into(), Box::new(TcsMiner::with_epsilon(0.3))),
        ];
        for (name, miner) in miners {
            let result = miner.mine(&planted.network, alpha);
            let mut found = 0usize;
            let (mut p_sum, mut r_sum) = (0.0, 0.0);
            for truth in &planted.truth {
                if let Some(truss) = result.truss_of(&truth.pattern) {
                    found += 1;
                    let (p, r) = vertex_precision_recall(&truss.vertices, &truth.vertices);
                    p_sum += p;
                    r_sum += r;
                }
            }
            let n = planted.truth.len() as f64;
            let (p, r) = (p_sum / n, r_sum / n);
            let f1 = if p + r > 0.0 {
                2.0 * p * r / (p + r)
            } else {
                0.0
            };
            table.push_row(vec![
                name,
                format!("{found}/{}", planted.truth.len()),
                fmt_f64(p),
                fmt_f64(r),
                fmt_f64(f1),
            ]);
        }
        table.print();
    }
}
