//! Reproduces **Figure 5**: TC-Tree query performance.
//!
//! Panels (a)-(d): Query-by-Alpha (QBA) — `q = S`, `α_q` swept from 0 in
//! steps of 0.1 until the answer is empty; query time and Retrieved Nodes
//! (RN), each time averaged over many runs.
//!
//! Panels (e)-(h): Query-by-Pattern (QBP) — `α_q = 0`, query patterns
//! sampled from TC-Tree nodes layer by layer; time and RN vs pattern
//! length.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tc_bench::{build_dataset, fmt_count, fmt_secs, BenchArgs, Table};
use tc_index::{TcTree, TcTreeBuilder};
use tc_util::Stopwatch;

fn main() {
    let args = BenchArgs::from_env();
    args.warn_unused_json();
    args.warn_unused_threads();
    let runs = if args.quick { 50 } else { 1000 };

    for dataset in args.datasets() {
        let net = build_dataset(dataset, args.scale);
        let tree = TcTreeBuilder::default().build(&net);
        println!(
            "\n## Figure 5 — {}: tree has {} nodes, alpha* = {:.3}",
            dataset.name(),
            fmt_count(tree.num_nodes()),
            tree.alpha_upper_bound()
        );

        qba(&tree, dataset.name(), runs);
        qbp(&tree, dataset.name(), runs);
    }
}

/// Panels (a)-(d): query time and RN vs `α_q`.
fn qba(tree: &TcTree, name: &str, runs: usize) {
    let mut table = Table::new(
        format!("Fig 5 QBA ({name})"),
        &["alpha_q", "Query Time (avg)", "Retrieved Nodes"],
    );
    let mut alpha = 0.0f64;
    loop {
        let result = tree.query_by_alpha(alpha);
        if result.retrieved_nodes == 0 && alpha > 0.0 {
            break;
        }
        // Average the query time over `runs` repetitions (paper: 1000).
        let sw = Stopwatch::start();
        for _ in 0..runs {
            let r = tree.query_by_alpha(alpha);
            std::hint::black_box(r.retrieved_nodes);
        }
        let avg = sw.elapsed_secs() / runs as f64;
        table.push_row(vec![
            format!("{alpha:.1}"),
            fmt_secs(avg),
            fmt_count(result.retrieved_nodes),
        ]);
        alpha += 0.1;
        if alpha > tree.alpha_upper_bound() + 0.1 {
            break;
        }
    }
    table.print();
}

/// Panels (e)-(h): query time and RN vs query pattern length.
fn qbp(tree: &TcTree, name: &str, runs: usize) {
    let mut table = Table::new(
        format!("Fig 5 QBP ({name})"),
        &[
            "Pattern Length",
            "Query Time (avg)",
            "Retrieved Nodes (avg)",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(0xF16);
    for len in 1..=tree.max_depth() {
        let pool = tree.nodes_at_depth(len);
        if pool.is_empty() {
            continue;
        }
        // The paper samples 1000 nodes per layer; we sample up to `runs`.
        let sampled: Vec<u32> = pool
            .choose_multiple(&mut rng, runs.min(pool.len()))
            .copied()
            .collect();
        let mut total_rn = 0usize;
        let sw = Stopwatch::start();
        for &node in &sampled {
            let q = tree.node(node).pattern.clone();
            let r = tree.query_by_pattern(&q);
            total_rn += r.retrieved_nodes;
        }
        let avg_time = sw.elapsed_secs() / sampled.len() as f64;
        let avg_rn = total_rn as f64 / sampled.len() as f64;
        table.push_row(vec![
            fmt_count(len),
            fmt_secs(avg_time),
            format!("{avg_rn:.1}"),
        ]);
    }
    table.print();
}
