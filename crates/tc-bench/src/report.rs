//! Table and series printers for experiment output, plus the JSON
//! telemetry report CI archives per PR.
//!
//! Every experiment binary prints the same rows/series the paper reports,
//! as GitHub-flavoured markdown tables so the output can be pasted straight
//! into EXPERIMENTS.md. Binaries that accept `--json <path>` additionally
//! emit a machine-readable [`JsonReport`] (the `BENCH_pr.json` artifact),
//! so the perf trajectory accumulates one datapoint per PR.

/// A fixed-schema table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A flat machine-readable metrics report, serialised as JSON by hand —
/// the workspace has no serde, and the schema is three fields deep.
///
/// ```json
/// {
///   "schema": "tc-bench/v1",
///   "bench": "storage",
///   "metrics": [
///     {"group": "BK", "metric": "tree_seg_open_secs", "value": 0.0012},
///     …
///   ]
/// }
/// ```
#[derive(Debug, Clone)]
pub struct JsonReport {
    bench: String,
    metrics: Vec<(String, String, f64)>,
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonReport {
    /// A new report for the benchmark called `bench`.
    pub fn new(bench: impl Into<String>) -> Self {
        JsonReport {
            bench: bench.into(),
            metrics: Vec::new(),
        }
    }

    /// Records one datapoint: `group` scopes the metric (e.g. a dataset
    /// name), `metric` names it, `value` is its measurement.
    pub fn push(&mut self, group: impl Into<String>, metric: impl Into<String>, value: f64) {
        self.metrics.push((group.into(), metric.into(), value));
    }

    /// Number of datapoints recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when no datapoints were recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the report as a JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"tc-bench/v1\",\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        out.push_str("  \"metrics\": [\n");
        for (i, (group, metric, value)) in self.metrics.iter().enumerate() {
            // Non-finite floats are not valid JSON numbers.
            let value = if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_string()
            };
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"metric\": \"{}\", \"value\": {}}}{}\n",
                json_escape(group),
                json_escape(metric),
                value,
                if i + 1 < self.metrics.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the rendered report to `path`.
    pub fn write_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// The benchmark name this report was recorded under.
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// The recorded datapoints as `(group, metric, value)` rows.
    pub fn metrics(&self) -> &[(String, String, f64)] {
        &self.metrics
    }

    /// Parses a rendered `tc-bench/v1` report (the inverse of
    /// [`JsonReport::render`]); `null` values come back as NaN.
    pub fn parse(text: &str) -> Result<JsonReport, String> {
        let doc = crate::jsonin::parse(text)?;
        match doc.get("schema").and_then(crate::jsonin::JsonValue::as_str) {
            Some("tc-bench/v1") => {}
            other => return Err(format!("unsupported schema {other:?}")),
        }
        let bench = doc
            .get("bench")
            .and_then(crate::jsonin::JsonValue::as_str)
            .ok_or("missing 'bench' field")?
            .to_string();
        let rows = doc
            .get("metrics")
            .and_then(crate::jsonin::JsonValue::as_arr)
            .ok_or("missing 'metrics' array")?;
        let mut metrics = Vec::with_capacity(rows.len());
        for row in rows {
            let field = |key: &str| {
                row.get(key)
                    .and_then(crate::jsonin::JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("metric row missing '{key}'"))
            };
            let value = row
                .get("value")
                .and_then(crate::jsonin::JsonValue::as_num)
                .ok_or("metric row missing numeric 'value'")?;
            metrics.push((field("group")?, field("metric")?, value));
        }
        Ok(JsonReport { bench, metrics })
    }

    /// Loads and parses a report file.
    pub fn load_from_path(path: &std::path::Path) -> Result<JsonReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Formats seconds with adaptive precision (`1.23 s`, `45.6 ms`, `789 µs`).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// Formats a count with thousands separators (`1,234,567`).
pub fn fmt_count(n: usize) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a float with 4 significant digits.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("### Demo"));
        assert!(r.contains("| a"));
        assert!(r.contains("| 1"));
        assert!(r.contains("|---"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn json_report_renders_valid_structure() {
        let mut r = JsonReport::new("storage");
        r.push("BK", "tree_seg_open_secs", 0.0012);
        r.push("BK", "weird \"name\"", f64::NAN);
        let json = r.render();
        assert!(json.contains("\"schema\": \"tc-bench/v1\""));
        assert!(json.contains("\"bench\": \"storage\""));
        assert!(json.contains("\"value\": 0.0012"));
        assert!(json.contains("\"value\": null"), "NaN must become null");
        assert!(
            json.contains("weird \\\"name\\\""),
            "quotes must be escaped"
        );
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        // Exactly one comma between the two entries, none trailing.
        assert_eq!(
            json.matches("}},\n").count() + json.matches("},\n").count(),
            1
        );
    }

    #[test]
    fn json_report_writes_file() {
        let mut r = JsonReport::new("smoke");
        r.push("g", "m", 1.5);
        let dir = std::env::temp_dir().join("tc_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pr.json");
        r.write_to_path(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.render());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_reader_round_trips_own_report_format() {
        use crate::jsonin::{parse, JsonValue};
        let mut r = JsonReport::new("storage");
        r.push("BK", "tree_seg_bytes", 4096.0);
        r.push("BK", "warm_qba_secs", 1.5e-5);
        r.push("BK", "nan_metric", f64::NAN);
        let v = parse(&r.render()).unwrap();
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("tc-bench/v1")
        );
        let metrics = v.get("metrics").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(
            metrics[0].get("metric").and_then(JsonValue::as_str),
            Some("tree_seg_bytes")
        );
        assert_eq!(
            metrics[0].get("value").and_then(JsonValue::as_num),
            Some(4096.0)
        );
        assert!(metrics[2]
            .get("value")
            .and_then(JsonValue::as_num)
            .unwrap()
            .is_nan());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.50 µs");
        assert_eq!(fmt_secs(0.0000000030), "3 ns");
    }

    #[test]
    fn fmt_count_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn fmt_f64_styles() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.5), "0.5000");
        assert!(fmt_f64(12345.0).contains('e'));
        assert!(fmt_f64(0.00001).contains('e'));
    }
}
