//! Table and series printers for experiment output.
//!
//! Every experiment binary prints the same rows/series the paper reports,
//! as GitHub-flavoured markdown tables so the output can be pasted straight
//! into EXPERIMENTS.md.

/// A fixed-schema table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a markdown table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with adaptive precision (`1.23 s`, `45.6 ms`, `789 µs`).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// Formats a count with thousands separators (`1,234,567`).
pub fn fmt_count(n: usize) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a float with 4 significant digits.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("### Demo"));
        assert!(r.contains("| a"));
        assert!(r.contains("| 1"));
        assert!(r.contains("|---"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.50 µs");
        assert_eq!(fmt_secs(0.0000000030), "3 ns");
    }

    #[test]
    fn fmt_count_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn fmt_f64_styles() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.5), "0.5000");
        assert!(fmt_f64(12345.0).contains('e'));
        assert!(fmt_f64(0.00001).contains('e'));
    }
}
