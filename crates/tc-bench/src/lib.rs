//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures on the generated dataset analogs.
//!
//! * [`alloc`] — counting global allocator (Table 3's "Memory" column);
//! * [`report`] — markdown table/series printers and the `tc-bench/v1`
//!   JSON telemetry report (write + parse);
//! * [`jsonin`] — the minimal JSON reader behind `bench_compare`
//!   (re-exported from [`tc_util::json`]);
//! * [`stats`] — shared nearest-rank percentile helper for the latency
//!   sections;
//! * [`workloads`] — the four standard datasets (BK/GW/AMINER/SYN analogs)
//!   at a configurable `--scale`, plus shared CLI argument parsing.
//!
//! The experiment binaries live in `src/bin/` — one per table/figure:
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table2_stats` | Table 2 (dataset statistics) |
//! | `fig3_params` | Figure 3 (α and ε sweeps: time, NP, NV, NE) |
//! | `fig4_scalability` | Figure 4 (time, NP, NV/NP, NE/NP vs #edges) |
//! | `table3_indexing` | Table 3 (TC-Tree build time / memory / #nodes) |
//! | `fig5_query` | Figure 5 (QBA/QBP query time and retrieved nodes) |
//! | `case_study` | §7.4 / Table 4 / Figure 6 (co-author case study) |
//! | `accuracy` | extra: planted-community precision/recall |
//! | `ablation_pruning` | extra: §7.1 MPTD-call-count ablation |
//! | `storage_bench` | extra: text-load vs `tc-store` segment-open query latency (CI telemetry source) |
//! | `throughput_bench` | extra: parallel mining/indexing grid + sustained-load serving baseline (CI telemetry source) |
//! | `serve_bench` | extra: QPS-vs-client-count sweep against a real `tc-serve` daemon over loopback (CI telemetry source) |
//! | `bench_compare` | the CI bench-telemetry gate: merges reports, compares against `BENCH_main.json` |
//! | `run_all` | drives every experiment in sequence |

pub mod alloc;
pub mod report;
pub mod stats;
pub mod workloads;

/// The minimal JSON reader behind `bench_compare`, now shared from
/// `tc_util::json` (the `tc-serve` HTTP front-end reads batch bodies with
/// the same parser).
pub use tc_util::json as jsonin;

pub use report::{fmt_count, fmt_f64, fmt_secs, JsonReport, Table};
pub use stats::percentile;
pub use workloads::{build_dataset, BenchArgs, Dataset};
