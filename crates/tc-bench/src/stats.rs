//! Small shared statistics helpers for the benchmark binaries.

/// Nearest-rank percentile over an **ascending-sorted** sample.
///
/// Implements the textbook nearest-rank method: the `p`-th percentile
/// (`p` in `[0, 1]`) of `n` samples is the value at 1-based rank
/// `ceil(p · n)`, clamped to `[1, n]`. Returns `NaN` on an empty sample.
///
/// This replaces the old `((n - 1) · p).round()` interpolation, which
/// mislabelled tail percentiles on small samples — e.g. p50 of 10
/// samples rounded rank 4.5 *up* to the 6th value, and p99 of 50 samples
/// landed on the maximum via a 48.51 → 49 rounding rather than by rank
/// arithmetic. Nearest-rank is monotone in `p`, exact on the boundary
/// ranks (`p = k/n` picks the `k`-th value), and never interpolates.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> Vec<f64> {
        (1..=n).map(|i| i as f64).collect()
    }

    #[test]
    fn empty_sample_is_nan() {
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn single_sample_answers_itself_at_every_p() {
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.5], p), 7.5, "p={p}");
        }
    }

    #[test]
    fn exact_boundary_ranks_on_100_samples() {
        let s = series(100);
        assert_eq!(percentile(&s, 0.01), 1.0);
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.00), 100.0);
    }

    #[test]
    fn small_sample_fixtures_match_nearest_rank_by_hand() {
        // n = 10: ceil(p·10) ranks computed by hand.
        let s = series(10);
        assert_eq!(percentile(&s, 0.50), 5.0, "rank ceil(5) = 5");
        assert_eq!(percentile(&s, 0.55), 6.0, "rank ceil(5.5) = 6");
        assert_eq!(percentile(&s, 0.90), 9.0, "rank ceil(9) = 9");
        assert_eq!(percentile(&s, 0.99), 10.0, "rank ceil(9.9) = 10");

        // n = 4 (the canonical worked example of the nearest-rank method).
        let s = [15.0, 20.0, 35.0, 50.0];
        assert_eq!(percentile(&s, 0.30), 20.0, "rank ceil(1.2) = 2");
        assert_eq!(percentile(&s, 0.40), 20.0, "rank ceil(1.6) = 2");
        assert_eq!(percentile(&s, 0.50), 20.0, "rank ceil(2) = 2");
        assert_eq!(percentile(&s, 0.75), 35.0, "rank ceil(3) = 3");
        assert_eq!(percentile(&s, 1.00), 50.0);

        // Regression vs the old rounding bug: p50 of 10 samples must be
        // the 5th value, not the 6th the round-half-up picked.
        assert_ne!(percentile(&series(10), 0.5), 6.0);
    }

    #[test]
    fn out_of_range_p_clamps_to_the_extremes() {
        let s = series(5);
        assert_eq!(percentile(&s, 0.0), 1.0, "rank 0 clamps to the minimum");
        assert_eq!(percentile(&s, -1.0), 1.0);
        assert_eq!(percentile(&s, 2.0), 5.0, "over-1 p clamps to the maximum");
    }

    #[test]
    fn monotone_in_p() {
        let s = series(50);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let v = percentile(&s, i as f64 / 100.0);
            assert!(
                v >= last,
                "p={} dropped from {last} to {v}",
                i as f64 / 100.0
            );
            last = v;
        }
    }
}
