//! A counting global allocator for the Table 3 "Memory" column.
//!
//! Wraps the system allocator with atomic counters for live and peak bytes.
//! Experiment binaries install it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: tc_bench::alloc::CountingAlloc = tc_bench::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// System allocator wrapper that tracks live and peak heap bytes.
pub struct CountingAlloc;

impl CountingAlloc {
    fn record_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        // Racy max update is fine: slight undercount beats a CAS loop on
        // every allocation.
        if live > PEAK.load(Ordering::Relaxed) {
            PEAK.store(live, Ordering::Relaxed);
        }
    }

    fn record_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only additions are atomic counter updates,
// which neither allocate (no recursion) nor unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded under the caller's own contract (`layout` has
        // non-zero size), which is exactly what `System.alloc` requires.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this `layout`; we allocate through `System` only, so the pair is
        // valid for `System.dealloc`.
        unsafe { System.dealloc(ptr, layout) };
        Self::record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: same forwarding argument as `dealloc`, plus the caller's
        // guarantee that `new_size` is non-zero and fits `layout.align()`.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            Self::record_dealloc(layout.size());
            Self::record_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live heap bytes since start (or the last [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, so a subsequent
/// [`peak_bytes`] measures one phase in isolation.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The allocator is only *installed* in experiment binaries, so these
    // tests exercise the counter plumbing directly.
    use super::*;

    #[test]
    fn counters_move() {
        CountingAlloc::record_alloc(1000);
        assert!(current_bytes() >= 1000);
        assert!(peak_bytes() >= 1000);
        CountingAlloc::record_dealloc(1000);
    }

    #[test]
    fn reset_peak_tracks_live() {
        CountingAlloc::record_alloc(500);
        reset_peak();
        let base = peak_bytes();
        CountingAlloc::record_alloc(2000);
        assert!(peak_bytes() >= base + 2000);
        CountingAlloc::record_dealloc(2500);
    }
}
