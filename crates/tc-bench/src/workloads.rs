//! The four standard evaluation datasets (Table 2 analogs), at a
//! configurable scale.
//!
//! `scale = 1.0` is laptop-sized (finishes the full experiment suite in
//! minutes); larger scales approach the paper's sizes. Every dataset is
//! deterministic for a given scale.

use tc_core::DatabaseNetwork;
use tc_data::{
    generate_checkin, generate_coauthor, generate_synthetic, CheckinConfig, CoauthorConfig,
    SynConfig,
};

/// The evaluation datasets of §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Brightkite analog (check-in, smaller).
    Bk,
    /// Gowalla analog (check-in, larger, more locations).
    Gw,
    /// AMINER analog (co-author keyword network).
    Aminer,
    /// SYN — the paper's own synthetic procedure.
    Syn,
}

impl Dataset {
    /// All four datasets in the paper's Table 2 order.
    pub const ALL: [Dataset; 4] = [Dataset::Bk, Dataset::Gw, Dataset::Aminer, Dataset::Syn];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Bk => "BK",
            Dataset::Gw => "GW",
            Dataset::Aminer => "AMINER",
            Dataset::Syn => "SYN",
        }
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "bk" => Some(Dataset::Bk),
            "gw" => Some(Dataset::Gw),
            "aminer" => Some(Dataset::Aminer),
            "syn" => Some(Dataset::Syn),
            _ => None,
        }
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

/// Builds a dataset at the given scale (deterministic).
pub fn build_dataset(dataset: Dataset, scale: f64) -> DatabaseNetwork {
    match dataset {
        Dataset::Bk => {
            generate_checkin(&CheckinConfig {
                users: scaled(260, scale),
                groups: scaled(24, scale),
                group_size: 9,
                locations: scaled(160, scale),
                locations_per_group: 4,
                periods: 30,
                visit_prob: 0.65,
                noise_rate: 1.0,
                friend_prob: 0.55,
                extra_edges: scaled(120, scale),
                seed: 0xB1,
            })
            .network
        }
        Dataset::Gw => {
            generate_checkin(&CheckinConfig {
                users: scaled(420, scale),
                groups: scaled(40, scale),
                group_size: 10,
                locations: scaled(320, scale),
                locations_per_group: 4,
                periods: 26,
                visit_prob: 0.6,
                noise_rate: 1.2,
                friend_prob: 0.45,
                extra_edges: scaled(260, scale),
                seed: 0x60,
            })
            .network
        }
        Dataset::Aminer => {
            generate_coauthor(&CoauthorConfig {
                groups: scaled(16, scale).min(64),
                authors_per_group: scaled(18, scale.sqrt()),
                interdisciplinary_authors: scaled(10, scale),
                papers_per_author: 22,
                keywords_per_paper: 4,
                collab_prob: 0.35,
                cross_group_edges: scaled(60, scale),
                generic_keyword_prob: 0.4,
                seed: 0xA1,
            })
            .network
        }
        Dataset::Syn => generate_synthetic(&SynConfig {
            vertices: scaled(2400, scale),
            edges_per_vertex: 5,
            seeds: scaled(24, scale),
            items: scaled(500, scale),
            mutation: 0.1,
            max_transactions: 48,
            max_transaction_len: 16,
            seed: 0x57,
        }),
    }
}

/// Minimal command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset scale multiplier (default 1.0).
    pub scale: f64,
    /// Quick mode: fewer sweep points, smaller repetition counts.
    pub quick: bool,
    /// Restrict to one dataset, if given.
    pub only: Option<Dataset>,
    /// Where to write the machine-readable telemetry report
    /// (`--json <path>`), for binaries that support it.
    pub json: Option<std::path::PathBuf>,
    /// Worker-thread counts (`--threads 1,2,8`): a grid for the
    /// throughput binaries, a single count for the builders.
    pub threads: Option<Vec<usize>>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 1.0,
            quick: false,
            only: None,
            json: None,
            threads: None,
        }
    }
}

impl BenchArgs {
    /// Parses `--scale <f>`, `--quick`, `--dataset <name>` from `args`.
    /// Unknown flags abort with a usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> BenchArgs {
        let mut out = BenchArgs::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().unwrap_or_else(|| usage("--scale needs a value"));
                    out.scale = v.parse().unwrap_or_else(|_| usage("bad --scale value"));
                }
                "--quick" => out.quick = true,
                "--dataset" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--dataset needs a value"));
                    out.only = Some(Dataset::parse(&v).unwrap_or_else(|| usage("unknown dataset")));
                }
                "--json" => {
                    let v = it.next().unwrap_or_else(|| usage("--json needs a path"));
                    out.json = Some(std::path::PathBuf::from(v));
                }
                "--threads" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    let parsed: Result<Vec<usize>, _> =
                        v.split(',').map(|t| t.trim().parse::<usize>()).collect();
                    match parsed {
                        Ok(list) if !list.is_empty() && list.iter().all(|&t| t > 0) => {
                            out.threads = Some(list);
                        }
                        _ => usage("bad --threads value (expect e.g. 1,2,8)"),
                    }
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> BenchArgs {
        Self::parse(std::env::args().skip(1))
    }

    /// The datasets selected by `--dataset`, or all four.
    pub fn datasets(&self) -> Vec<Dataset> {
        match self.only {
            Some(d) => vec![d],
            None => Dataset::ALL.to_vec(),
        }
    }

    /// The `--threads` grid, or `default` when the flag was not given.
    pub fn thread_grid(&self, default: &[usize]) -> Vec<usize> {
        self.threads.clone().unwrap_or_else(|| default.to_vec())
    }

    /// Called by binaries that do not emit telemetry: warns when the user
    /// passed `--json` so the flag is never silently dropped.
    pub fn warn_unused_json(&self) {
        if let Some(path) = &self.json {
            eprintln!(
                "warning: this binary does not emit telemetry; --json {} is ignored \
                 (use storage_bench or throughput_bench)",
                path.display()
            );
        }
    }

    /// Called by binaries that run single-threaded: warns when the user
    /// passed `--threads` so the flag is never silently dropped.
    pub fn warn_unused_threads(&self) {
        if let Some(threads) = &self.threads {
            eprintln!(
                "warning: this binary does not take a thread grid; --threads {threads:?} \
                 is ignored (use throughput_bench)"
            );
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale <f64>] [--quick] [--dataset bk|gw|aminer|syn] [--json <path>] [--threads 1,2,8]\n\
         (--json is consumed by telemetry-emitting binaries: storage_bench, throughput_bench;\n\
          --threads sets the worker grid of throughput_bench)"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parse_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
            assert_eq!(Dataset::parse(&d.name().to_lowercase()), Some(d));
        }
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn args_parse() {
        let a = BenchArgs::parse(
            [
                "--scale",
                "0.5",
                "--quick",
                "--dataset",
                "bk",
                "--json",
                "out.json",
                "--threads",
                "1,2,8",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(a.scale, 0.5);
        assert!(a.quick);
        assert_eq!(a.only, Some(Dataset::Bk));
        assert_eq!(a.datasets(), vec![Dataset::Bk]);
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(a.threads, Some(vec![1, 2, 8]));
        assert_eq!(a.thread_grid(&[4]), vec![1, 2, 8]);
        assert_eq!(BenchArgs::default().thread_grid(&[4]), vec![4]);
    }

    #[test]
    fn default_args_cover_all_datasets() {
        let a = BenchArgs::default();
        assert_eq!(a.datasets().len(), 4);
    }

    #[test]
    fn small_scale_datasets_build() {
        for d in Dataset::ALL {
            let net = build_dataset(d, 0.1);
            assert!(net.num_vertices() > 0, "{} empty", d.name());
            assert!(net.num_edges() > 0, "{} edgeless", d.name());
            let stats = net.stats();
            assert!(stats.transactions > 0);
            assert!(stats.items_unique > 0);
        }
    }

    #[test]
    fn datasets_deterministic() {
        let a = build_dataset(Dataset::Bk, 0.1);
        let b = build_dataset(Dataset::Bk, 0.1);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn scale_grows_dataset() {
        let small = build_dataset(Dataset::Bk, 0.1);
        let large = build_dataset(Dataset::Bk, 0.3);
        assert!(large.num_vertices() > small.num_vertices());
    }
}
