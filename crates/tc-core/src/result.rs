//! Mining results and the evaluation metrics of §7 (NP / NV / NE).

use crate::community::{extract_communities, ThemeCommunity};
use crate::truss::PatternTruss;
use tc_txdb::Pattern;
use tc_util::HeapSize;

/// Counters accumulated by a miner run — the quantities behind Figures 3-4
/// and the §7.1 pruning-effectiveness discussion (MPTD call counts).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinerStats {
    /// How many times MPTD (Algorithm 1) ran.
    pub mptd_calls: usize,
    /// Candidate patterns generated (before any pruning).
    pub candidates_generated: usize,
    /// Candidates discarded by the TCFI empty-intersection test without
    /// running MPTD (always 0 for TCS / TCFA).
    pub pruned_by_intersection: usize,
    /// Wall-clock time of the mine call, in seconds.
    pub elapsed_secs: f64,
}

/// The outcome of mining a database network at one cohesion threshold: every
/// non-empty maximal pattern truss, keyed by its pattern.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// The cohesion threshold `α` used.
    pub alpha: f64,
    /// Non-empty maximal pattern trusses, sorted by pattern.
    pub trusses: Vec<PatternTruss>,
    /// Run counters.
    pub stats: MinerStats,
}

impl MiningResult {
    /// Assembles a result, sorting trusses by pattern for determinism.
    pub fn new(alpha: f64, mut trusses: Vec<PatternTruss>, stats: MinerStats) -> Self {
        trusses.retain(|t| !t.is_empty());
        trusses.sort_by(|a, b| a.pattern.cmp(&b.pattern));
        MiningResult {
            alpha,
            trusses,
            stats,
        }
    }

    /// **NP** — number of detected maximal pattern trusses (one per
    /// pattern; §7's "Number of Patterns").
    pub fn np(&self) -> usize {
        self.trusses.len()
    }

    /// **NV** — total vertices across all trusses; a vertex in `k` trusses
    /// counts `k` times (§7).
    pub fn nv(&self) -> usize {
        self.trusses.iter().map(PatternTruss::num_vertices).sum()
    }

    /// **NE** — total edges across all trusses, counted with multiplicity.
    pub fn ne(&self) -> usize {
        self.trusses.iter().map(PatternTruss::num_edges).sum()
    }

    /// All theme communities (Definition 3.5): connected components of every
    /// truss.
    pub fn communities(&self) -> Vec<ThemeCommunity> {
        self.trusses.iter().flat_map(extract_communities).collect()
    }

    /// The truss of a specific pattern, if qualified.
    pub fn truss_of(&self, pattern: &Pattern) -> Option<&PatternTruss> {
        self.trusses
            .binary_search_by(|t| t.pattern.cmp(pattern))
            .ok()
            .map(|i| &self.trusses[i])
    }

    /// The sorted list of qualified patterns.
    pub fn patterns(&self) -> Vec<&Pattern> {
        self.trusses.iter().map(|t| &t.pattern).collect()
    }

    /// `true` when both results found identical trusses (pattern, edge set
    /// and vertex set all equal) — used to verify TCFA ≡ TCFI.
    pub fn same_trusses(&self, other: &MiningResult) -> bool {
        self.trusses.len() == other.trusses.len()
            && self
                .trusses
                .iter()
                .zip(&other.trusses)
                .all(|(a, b)| a.pattern == b.pattern && a.edges == b.edges)
    }

    /// The `k` most thematic communities: longest pattern first, ties
    /// broken by size — the ordering the case study (§7.4) presents.
    pub fn top_communities(&self, k: usize) -> Vec<ThemeCommunity> {
        let mut communities = self.communities();
        communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));
        communities.truncate(k);
        communities
    }

    /// Communities with at least `min_vertices` members and a theme of at
    /// least `min_pattern_len` items — the usual report filter.
    pub fn filter_communities(
        &self,
        min_vertices: usize,
        min_pattern_len: usize,
    ) -> Vec<ThemeCommunity> {
        self.communities()
            .into_iter()
            .filter(|c| c.num_vertices() >= min_vertices && c.pattern.len() >= min_pattern_len)
            .collect()
    }
}

impl HeapSize for MiningResult {
    fn heap_size(&self) -> usize {
        self.trusses.iter().map(|t| t.heap_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_txdb::Item;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| Item(i)).collect())
    }

    fn sample() -> MiningResult {
        MiningResult::new(
            0.1,
            vec![
                PatternTruss::from_edges(pat(&[1]), 0.1, vec![(0, 1), (1, 2), (0, 2)]),
                PatternTruss::from_edges(
                    pat(&[0]),
                    0.1,
                    vec![(0, 1), (1, 2), (0, 2), (5, 6), (6, 7), (5, 7)],
                ),
                PatternTruss::empty(pat(&[2]), 0.1),
            ],
            MinerStats::default(),
        )
    }

    #[test]
    fn empty_trusses_dropped_and_sorted() {
        let r = sample();
        assert_eq!(r.np(), 2);
        assert_eq!(r.patterns(), vec![&pat(&[0]), &pat(&[1])]);
    }

    #[test]
    fn np_nv_ne() {
        let r = sample();
        assert_eq!(r.np(), 2);
        assert_eq!(r.nv(), 6 + 3);
        assert_eq!(r.ne(), 6 + 3);
    }

    #[test]
    fn communities_split_disconnected_trusses() {
        let r = sample();
        let cs = r.communities();
        // pattern {0} has two components, pattern {1} one.
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn truss_lookup() {
        let r = sample();
        assert!(r.truss_of(&pat(&[0])).is_some());
        assert!(r.truss_of(&pat(&[2])).is_none());
        assert!(r.truss_of(&pat(&[9])).is_none());
    }

    #[test]
    fn same_trusses_comparison() {
        let a = sample();
        let b = sample();
        assert!(a.same_trusses(&b));
        let c = MiningResult::new(
            0.1,
            vec![PatternTruss::from_edges(
                pat(&[0]),
                0.1,
                vec![(0, 1), (1, 2), (0, 2)],
            )],
            MinerStats::default(),
        );
        assert!(!a.same_trusses(&c));
    }

    #[test]
    fn top_communities_ordering_and_truncation() {
        let r = sample();
        let top = r.top_communities(2);
        assert_eq!(top.len(), 2);
        // All communities here have 1-item patterns; largest size first.
        assert!(top[0].num_vertices() >= top[1].num_vertices());
        let all = r.top_communities(100);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn filter_communities_thresholds() {
        let r = sample();
        assert_eq!(r.filter_communities(0, 0).len(), 3);
        assert_eq!(
            r.filter_communities(4, 0).len(),
            0,
            "all components have 3 vertices"
        );
        assert_eq!(r.filter_communities(3, 1).len(), 3);
        assert_eq!(
            r.filter_communities(0, 2).len(),
            0,
            "no 2-item themes in fixture"
        );
    }
}
