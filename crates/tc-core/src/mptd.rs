//! Maximal Pattern Truss Detector — Algorithm 1 of the paper.
//!
//! Given a theme network `G_p` and a threshold `α`, MPTD removes
//! *unqualified* edges (cohesion `≤ α`) until none remain; the surviving
//! edges form the maximal pattern truss `C*_p(α)` (§4.1 proves this is
//! exactly the union of all pattern trusses at `α`). Complexity
//! `O(Σ_{v ∈ V_p} d²(v))`.

use crate::peel::PeelState;
use crate::theme::ThemeNetwork;
use crate::truss::PatternTruss;
use tc_graph::EdgeKey;

/// Runs MPTD on a theme network, returning `C*_p(α)` (possibly empty).
pub fn maximal_pattern_truss(theme: &ThemeNetwork, alpha: f64) -> PatternTruss {
    let (truss, _) = maximal_pattern_truss_with_cohesions(theme, alpha);
    truss
}

/// MPTD variant that also reports the final cohesion of every surviving
/// edge (global keys). Used by tests and by ablation benches; the
/// decomposition (§6.1) uses [`PeelState`] directly instead.
pub fn maximal_pattern_truss_with_cohesions(
    theme: &ThemeNetwork,
    alpha: f64,
) -> (PatternTruss, Vec<(EdgeKey, f64)>) {
    if theme.is_trivial() {
        return (
            PatternTruss::empty(theme.pattern().clone(), alpha),
            Vec::new(),
        );
    }
    let mut state = PeelState::new(theme);
    state.peel(alpha, |_| {});
    let edges = state.alive_global_edges();
    let cohesions: Vec<(EdgeKey, f64)> = state
        .alive_edge_ids()
        .map(|id| {
            let e = theme.global_edge(state.endpoints(id));
            (e, state.cohesion(id))
        })
        .collect();
    (
        PatternTruss::from_edges(theme.pattern().clone(), alpha, edges),
        cohesions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DatabaseNetwork, DatabaseNetworkBuilder};
    use crate::oracle;
    use tc_txdb::Pattern;

    /// Build a network where item "p" has chosen per-vertex frequencies
    /// (as tenths) and an explicit edge list.
    fn network_with_freqs(tenths: &[u32], edges: &[(u32, u32)]) -> (DatabaseNetwork, Pattern) {
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        let filler = b.intern_item("filler");
        for (v, &t) in tenths.iter().enumerate() {
            for _ in 0..t {
                b.add_transaction(v as u32, &[p]);
            }
            for _ in 0..(10 - t) {
                b.add_transaction(v as u32, &[filler]);
            }
        }
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        (net, pat)
    }

    /// The Figure 1(b) theme network: frequencies 0.1 on v1..v5 (0-indexed
    /// 0..4), v5 absent, 0.3 on v6..v8 — with the paper's topology shape.
    fn figure1b() -> (DatabaseNetwork, Pattern) {
        // 9 vertices; v5 (index 5) has f = 0.
        let tenths = [1, 1, 1, 1, 1, 0, 3, 3, 3];
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (0, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (6, 8),
            (7, 8),
        ];
        network_with_freqs(&tenths, &edges)
    }

    #[test]
    fn figure1b_two_trusses_at_small_alpha() {
        let (net, pat) = figure1b();
        let theme = ThemeNetwork::induce(&net, &pat);
        // α ∈ [0, 0.2): the dense cluster {0..4} and the triangle {6,7,8}
        // both survive (paper Example 3.6 reports two theme communities).
        let truss = maximal_pattern_truss(&theme, 0.0);
        assert!(!truss.is_empty());
        assert!(truss.contains_vertex(0));
        assert!(truss.contains_vertex(6));
        assert!(!truss.contains_vertex(5), "zero-frequency vertex excluded");
        // Triangle edges present.
        assert!(truss.contains_edge((6, 7)));
        assert!(truss.contains_edge((7, 8)));
        assert!(truss.contains_edge((6, 8)));
    }

    #[test]
    fn figure1b_truss_vanishes_at_high_alpha() {
        let (net, pat) = figure1b();
        let theme = ThemeNetwork::induce(&net, &pat);
        // Triangle {6,7,8}: each edge eco = 0.3. Cluster: eco ≤ 0.2.
        let t02 = maximal_pattern_truss(&theme, 0.25);
        assert!(!t02.is_empty());
        assert!(t02.contains_vertex(6) && t02.contains_vertex(7) && t02.contains_vertex(8));
        assert!(!t02.contains_vertex(0), "low-frequency cluster peeled");
        let t04 = maximal_pattern_truss(&theme, 0.3);
        assert!(t04.is_empty(), "0.3 ≤ α kills the triangle too");
    }

    #[test]
    fn result_is_a_pattern_truss() {
        // Every surviving edge must have cohesion > α inside the result.
        let (net, pat) = figure1b();
        let theme = ThemeNetwork::induce(&net, &pat);
        for alpha in [0.0, 0.05, 0.1, 0.2, 0.25] {
            let (truss, cohesions) = maximal_pattern_truss_with_cohesions(&theme, alpha);
            for &(e, eco) in &cohesions {
                assert!(
                    tc_util::float::gt_eps(eco, alpha),
                    "edge {e:?} cohesion {eco} not > {alpha}"
                );
            }
            // Cross-check reported cohesions against a from-scratch
            // recomputation on the surviving subgraph.
            let recomputed = oracle::cohesions_of_edge_set(&net, &pat, &truss.edges);
            for &(e, eco) in &cohesions {
                let r = recomputed[&e];
                assert!((eco - r).abs() < 1e-9, "edge {e:?}: {eco} vs {r}");
            }
        }
    }

    #[test]
    fn matches_bruteforce_oracle() {
        let (net, pat) = figure1b();
        let theme = ThemeNetwork::induce(&net, &pat);
        for alpha in [0.0, 0.1, 0.15, 0.2, 0.3, 0.5] {
            let fast = maximal_pattern_truss(&theme, alpha);
            let brute = oracle::brute_force_truss(&net, &pat, alpha);
            assert_eq!(fast.edges, brute, "alpha = {alpha}");
        }
    }

    #[test]
    fn maximality_adding_any_removed_edge_breaks_trussness() {
        let (net, pat) = figure1b();
        let theme = ThemeNetwork::induce(&net, &pat);
        let alpha = 0.15;
        let truss = maximal_pattern_truss(&theme, alpha);
        let all_edges: Vec<_> = theme
            .graph()
            .edges()
            .map(|e| theme.global_edge(e))
            .collect();
        for &extra in all_edges.iter().filter(|e| !truss.contains_edge(**e)) {
            let mut augmented = truss.edges.clone();
            augmented.push(extra);
            augmented.sort_unstable();
            // The augmented edge set must NOT be a pattern truss: some edge
            // violates eco > α after the fixpoint re-peel.
            let re_peeled = oracle::peel_edge_set(&net, &pat, &augmented, alpha);
            assert!(
                re_peeled.len() <= truss.edges.len(),
                "adding {extra:?} should not enlarge the fixpoint"
            );
        }
    }

    #[test]
    fn unit_frequencies_degenerate_to_ktruss() {
        // Paper §3.2: f ≡ 1 and α = k - 3 makes C_p(α) a k-truss.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (3, 4),
            (4, 5),
            (3, 5), // dangling triangle
        ];
        let (net, pat) = network_with_freqs(&[10; 6], &edges);
        let theme = ThemeNetwork::induce(&net, &pat);
        for k in 2..=5usize {
            let alpha = k as f64 - 3.0;
            let ours = maximal_pattern_truss(&theme, alpha);
            let classic = tc_graph::k_truss(net.graph(), k);
            assert_eq!(ours.edges, classic, "k = {k}");
        }
    }

    #[test]
    fn empty_theme_network() {
        let (net, _) = figure1b();
        let ghost = Pattern::singleton(tc_txdb::Item(999));
        let theme = ThemeNetwork::induce(&net, &ghost);
        let truss = maximal_pattern_truss(&theme, 0.0);
        assert!(truss.is_empty());
    }

    #[test]
    fn negative_alpha_keeps_triangle_edges_only() {
        // At α slightly below 0, edges in no triangle have eco = 0 > α and
        // survive. At α = 0 they die. (Definition 3.3 uses strict >.)
        let (net, pat) = network_with_freqs(&[10, 10, 10], &[(0, 1), (1, 2), (0, 2)]);
        let theme = ThemeNetwork::induce(&net, &pat);
        let t = maximal_pattern_truss(&theme, -0.5);
        assert_eq!(t.num_edges(), 3);
        // A path has no triangles: at α = 0 everything dies.
        let (net2, pat2) = network_with_freqs(&[10, 10, 10], &[(0, 1), (1, 2)]);
        let theme2 = ThemeNetwork::induce(&net2, &pat2);
        assert!(maximal_pattern_truss(&theme2, 0.0).is_empty());
        assert_eq!(maximal_pattern_truss(&theme2, -0.5).num_edges(), 2);
    }
}
