//! Theme Community Finder Apriori (TCFA) — Algorithm 3.
//!
//! TCFA walks pattern lengths level by level. Level 1 runs MPTD on the
//! theme network of every occurring item. Level `k` joins the *qualified*
//! patterns of level `k-1` (Algorithm 2), discards candidates with an
//! unqualified sub-pattern (Proposition 5.2's anti-monotonicity), and runs
//! MPTD on each survivor's theme network — induced from the **full**
//! network, which is TCFA's bottleneck that TCFI later removes.

use crate::miner::Miner;
use crate::mptd::maximal_pattern_truss;
use crate::network::DatabaseNetwork;
use crate::result::{MinerStats, MiningResult};
use crate::theme::ThemeNetwork;
use crate::truss::PatternTruss;
use tc_txdb::{apriori, Pattern};
use tc_util::Stopwatch;

/// The Apriori-style miner.
#[derive(Debug, Clone)]
pub struct TcfaMiner {
    /// Safety cap on pattern length (`usize::MAX` = unbounded, as in the
    /// paper; benchmarks use it unbounded too).
    pub max_len: usize,
}

impl Default for TcfaMiner {
    fn default() -> Self {
        TcfaMiner {
            max_len: usize::MAX,
        }
    }
}

/// Mines level 1: one MPTD per occurring item. Shared by TCFA and TCFI.
pub(crate) fn mine_level_one(
    network: &DatabaseNetwork,
    alpha: f64,
    stats: &mut MinerStats,
) -> Vec<PatternTruss> {
    let mut level = Vec::new();
    for item in network.items_in_use() {
        let pattern = Pattern::singleton(item);
        stats.candidates_generated += 1;
        let theme = ThemeNetwork::induce(network, &pattern);
        if theme.is_trivial() {
            continue;
        }
        stats.mptd_calls += 1;
        let truss = maximal_pattern_truss(&theme, alpha);
        if !truss.is_empty() {
            level.push(truss);
        }
    }
    level
}

impl Miner for TcfaMiner {
    fn name(&self) -> &'static str {
        "TCFA"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        let sw = Stopwatch::start();
        let mut stats = MinerStats::default();
        let mut all: Vec<PatternTruss> = Vec::new();

        // Level 1 (Algorithm 3, line 1).
        let mut level = mine_level_one(network, alpha, &mut stats);

        // Levels k = 2, 3, … (lines 2-12).
        let mut k = 2usize;
        while !level.is_empty() && k <= self.max_len {
            let mut prev_patterns: Vec<Pattern> = level.iter().map(|t| t.pattern.clone()).collect();
            all.append(&mut level);

            let candidates = apriori::generate_candidates(&mut prev_patterns);
            stats.candidates_generated += candidates.len();

            let mut next = Vec::new();
            for cand in candidates {
                // Algorithm 3 line 6 — induce G_pk from the FULL network.
                // This Ω(|V|)-per-candidate scan is TCFA's bottleneck; TCFI
                // exists to avoid it (§5.3). Do not "optimise" this to the
                // index-accelerated induction, or the baseline comparison
                // stops measuring what the paper measures.
                let theme = ThemeNetwork::induce_scan(network, &cand.pattern);
                if theme.is_trivial() {
                    continue;
                }
                stats.mptd_calls += 1;
                let truss = maximal_pattern_truss(&theme, alpha);
                if !truss.is_empty() {
                    next.push(truss);
                }
            }
            level = next;
            k += 1;
        }
        all.append(&mut level);

        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatabaseNetworkBuilder;
    use crate::oracle;
    use crate::tcs::TcsMiner;

    /// A triangle whose vertices share items {a, b}; a second triangle with
    /// only item a; plus an {a}-{b} bridge vertex pair.
    fn net() -> DatabaseNetwork {
        let mut b = DatabaseNetworkBuilder::new();
        let a = b.intern_item("a");
        let bb = b.intern_item("b");
        for v in 0..3u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[a, bb]);
            }
        }
        for v in 3..6u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[a]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
        b.add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn finds_multi_item_themes() {
        let network = net();
        let r = TcfaMiner::default().mine(&network, 0.5);
        let a = network.item_space().get("a").unwrap();
        let bb = network.item_space().get("b").unwrap();
        // {a}: both triangles; {b} and {a,b}: first triangle only.
        assert_eq!(r.np(), 3);
        let t_ab = r.truss_of(&Pattern::new(vec![a, bb])).unwrap();
        assert_eq!(t_ab.vertices, vec![0, 1, 2]);
        let t_a = r.truss_of(&Pattern::singleton(a)).unwrap();
        assert_eq!(t_a.vertices, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let network = net();
        for alpha in [0.0, 0.3, 0.5, 0.9, 1.5] {
            let r = TcfaMiner::default().mine(&network, alpha);
            let truth = oracle::exhaustive_mine(&network, alpha, usize::MAX);
            assert_eq!(r.np(), truth.len(), "alpha = {alpha}");
            for (p, edges) in &truth {
                assert_eq!(&r.truss_of(p).unwrap().edges, edges, "alpha = {alpha}, {p}");
            }
        }
    }

    #[test]
    fn agrees_with_exact_tcs() {
        let network = net();
        let tcfa = TcfaMiner::default().mine(&network, 0.2);
        let tcs = TcsMiner::with_epsilon(0.0).mine(&network, 0.2);
        assert!(tcfa.same_trusses(&tcs));
    }

    #[test]
    fn level_pruning_reduces_mptd_calls() {
        // With a high α nothing qualifies at level 1, so no level-2
        // candidates are generated at all.
        let network = net();
        let r = TcfaMiner::default().mine(&network, 10.0);
        assert_eq!(r.np(), 0);
        // Only the two level-1 items were ever tried.
        assert_eq!(r.stats.mptd_calls, 2);
    }

    #[test]
    fn max_len_caps_levels() {
        let network = net();
        let r = TcfaMiner { max_len: 1 }.mine(&network, 0.2);
        assert!(r.patterns().iter().all(|p| p.len() == 1));
    }

    #[test]
    fn empty_network() {
        let mut b = DatabaseNetworkBuilder::new();
        b.ensure_vertex(2);
        let network = b.build().unwrap();
        let r = TcfaMiner::default().mine(&network, 0.0);
        assert_eq!(r.np(), 0);
        assert_eq!(r.stats.mptd_calls, 0);
    }
}
