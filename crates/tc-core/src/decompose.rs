//! Maximal pattern truss decomposition — §6.1 (Theorem 6.1, Equation 1).
//!
//! Theorem 6.1: `C*_p(α)` only shrinks when `α` crosses the minimum edge
//! cohesion `β` of the current truss. The decomposition therefore peels
//! `C*_p(0)` with the ascending threshold sequence
//! `α_0 = 0, α_k = min eco of C*_p(α_{k-1})`, recording at each step the
//! *removed set* `R_p(α_k) = E*_p(α_{k-1}) \ E*_p(α_k)`. The resulting list
//! `L_p = (α_1, R_p(α_1)), …, (α_h, R_p(α_h))` stores exactly the edges of
//! `C*_p(0)` once each, and reconstructs any threshold via Equation 1:
//! `E*_p(α) = ∪_{α_k > α} R_p(α_k)`.

use crate::peel::PeelState;
use crate::theme::ThemeNetwork;
use crate::truss::PatternTruss;
use tc_graph::EdgeKey;
use tc_txdb::Pattern;
use tc_util::{float, HeapSize};

/// One node of the linked list `L_p`: the threshold `α_k` and the edges
/// removed when the truss shrinks past it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrussLevel {
    /// `α_k` — the minimum edge cohesion of `C*_p(α_{k-1})`. The edges of
    /// this level belong to `C*_p(α)` exactly for `α < α_k`.
    pub alpha: f64,
    /// `R_p(α_k)`, canonical global keys, sorted.
    pub edges: Vec<EdgeKey>,
}

/// The decomposition `L_p` of a maximal pattern truss `C*_p(0)`.
///
/// Stored in every TC-Tree node (§6.2); answers
/// [`TrussDecomposition::truss_at`] queries by Equation 1 and exposes the
/// nontrivial threshold range `[0, α*_p)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrussDecomposition {
    /// The pattern `p`.
    pub pattern: Pattern,
    /// Levels in strictly ascending `alpha` order.
    pub levels: Vec<TrussLevel>,
}

impl TrussDecomposition {
    /// Decomposes the maximal pattern truss of `theme` at `α = 0`.
    ///
    /// Returns an empty decomposition when `C*_p(0) = ∅` (the pattern is
    /// unqualified and, per Proposition 5.2, so is every super-pattern).
    pub fn decompose(theme: &ThemeNetwork) -> TrussDecomposition {
        let mut levels = Vec::new();
        if !theme.is_trivial() {
            let mut state = PeelState::new(theme);
            // Edge ids are stable; precompute their global keys so the
            // peel closure needs no access to `state`.
            let globals: Vec<EdgeKey> = (0..state.num_edges() as u32)
                .map(|id| theme.global_edge(state.endpoints(id)))
                .collect();

            // Establish C*_p(0): peel at α = 0, discarding those edges —
            // they are not part of the decomposition (L_p stores exactly
            // |E*_p(0)| edges).
            state.peel(0.0, |_| {});

            while state.alive_edges() > 0 {
                let beta = state
                    .min_alive_cohesion()
                    .expect("alive edges have cohesions");
                let mut removed = Vec::new();
                state.peel(beta, |id| removed.push(globals[id as usize]));
                removed.sort_unstable();
                debug_assert!(!removed.is_empty(), "a level must remove the β edge");
                levels.push(TrussLevel {
                    alpha: beta,
                    edges: removed,
                });
            }
        }
        TrussDecomposition {
            pattern: theme.pattern().clone(),
            levels,
        }
    }

    /// `true` when `C*_p(0) = ∅`.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Number of decomposition levels `h`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total edges stored — equals `|E*_p(0)|`.
    pub fn num_edges(&self) -> usize {
        self.levels.iter().map(|l| l.edges.len()).sum()
    }

    /// `α*_p = max A_p`: the upper bound of the nontrivial threshold range.
    /// `C*_p(α) = ∅` for every `α ≥ α*_p`; `None` when already empty.
    pub fn max_alpha(&self) -> Option<f64> {
        self.levels.last().map(|l| l.alpha)
    }

    /// Equation 1: reconstructs `E*_p(α) = ∪_{α_k > α} R_p(α_k)`, sorted.
    pub fn edges_at(&self, alpha: f64) -> Vec<EdgeKey> {
        let mut out = Vec::new();
        for level in &self.levels {
            if float::gt_eps(level.alpha, alpha) {
                out.extend_from_slice(&level.edges);
            }
        }
        out.sort_unstable();
        out
    }

    /// Reconstructs the full [`PatternTruss`] at `alpha` (possibly empty).
    pub fn truss_at(&self, alpha: f64) -> PatternTruss {
        PatternTruss::from_edges(self.pattern.clone(), alpha, self.edges_at(alpha))
    }
}

impl HeapSize for TrussDecomposition {
    fn heap_size(&self) -> usize {
        self.pattern.heap_size()
            + self
                .levels
                .iter()
                .map(|l| l.edges.capacity() * std::mem::size_of::<EdgeKey>())
                .sum::<usize>()
            + self.levels.capacity() * std::mem::size_of::<TrussLevel>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mptd::maximal_pattern_truss;
    use crate::network::{DatabaseNetwork, DatabaseNetworkBuilder};

    /// A network whose theme "p" has three cohesion tiers: an inner K4 of
    /// high-frequency vertices, a middle triangle, and a weak triangle.
    fn tiered() -> (DatabaseNetwork, Pattern) {
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        let q = b.intern_item("q");
        let add_with_freq = |b: &mut DatabaseNetworkBuilder, v: u32, tenths: u32| {
            for _ in 0..tenths {
                b.add_transaction(v, &[p]);
            }
            for _ in 0..(10 - tenths) {
                b.add_transaction(v, &[q]);
            }
        };
        // K4 on 0..4 with f = 1.0.
        for v in 0..4 {
            add_with_freq(&mut b, v, 10);
        }
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        // Triangle 4-5-6 with f = 0.5.
        for v in 4..7 {
            add_with_freq(&mut b, v, 5);
        }
        b.add_edge(4, 5).add_edge(5, 6).add_edge(4, 6);
        // Weak triangle 7-8-9 with f = 0.1.
        for v in 7..10 {
            add_with_freq(&mut b, v, 1);
        }
        b.add_edge(7, 8).add_edge(8, 9).add_edge(7, 9);
        // Bridges (no triangles, die at α = 0).
        b.add_edge(3, 4).add_edge(6, 7);
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        (net, pat)
    }

    #[test]
    fn levels_strictly_ascending() {
        let (net, pat) = tiered();
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        assert!(!d.is_empty());
        for w in d.levels.windows(2) {
            assert!(
                w[0].alpha < w[1].alpha,
                "levels must strictly ascend: {} vs {}",
                w[0].alpha,
                w[1].alpha
            );
        }
    }

    #[test]
    fn stores_exactly_the_alpha0_truss() {
        let (net, pat) = tiered();
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        let direct = maximal_pattern_truss(&theme, 0.0);
        assert_eq!(d.num_edges(), direct.num_edges());
        assert_eq!(d.edges_at(0.0), direct.edges);
    }

    #[test]
    fn levels_are_disjoint() {
        let (net, pat) = tiered();
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        let mut seen = std::collections::HashSet::new();
        for level in &d.levels {
            for e in &level.edges {
                assert!(seen.insert(*e), "edge {e:?} stored twice");
            }
        }
    }

    #[test]
    fn reconstruction_matches_direct_mptd_at_all_levels() {
        // Equation 1 vs a fresh MPTD run, at each level boundary and between.
        let (net, pat) = tiered();
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        let mut probes = vec![0.0, 0.05];
        for level in &d.levels {
            probes.push(level.alpha - 1e-4);
            probes.push(level.alpha);
            probes.push(level.alpha + 1e-4);
        }
        for alpha in probes {
            if alpha < 0.0 {
                continue;
            }
            let direct = maximal_pattern_truss(&theme, alpha);
            assert_eq!(
                d.edges_at(alpha),
                direct.edges,
                "reconstruction mismatch at alpha = {alpha}"
            );
        }
    }

    #[test]
    fn max_alpha_is_emptiness_bound() {
        let (net, pat) = tiered();
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        let a_star = d.max_alpha().unwrap();
        assert!(d.edges_at(a_star).is_empty(), "empty at α*");
        assert!(
            !d.edges_at(a_star - 1e-6).is_empty(),
            "nonempty just below α*"
        );
        let direct = maximal_pattern_truss(&theme, a_star);
        assert!(direct.is_empty());
    }

    #[test]
    fn theorem_6_1_shrinkage() {
        // C*_p(α2) ⊂ C*_p(α1) strictly when α2 ≥ β (min cohesion).
        let (net, pat) = tiered();
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        let t0 = d.truss_at(0.0);
        let beta = d.levels[0].alpha;
        let t1 = d.truss_at(beta);
        assert!(t1.num_edges() < t0.num_edges(), "strict shrink at β");
        assert!(t1.is_subgraph_of(&t0));
    }

    #[test]
    fn empty_theme_decomposes_to_empty() {
        let (net, _) = tiered();
        let ghost = Pattern::singleton(tc_txdb::Item(999));
        let theme = ThemeNetwork::induce(&net, &ghost);
        let d = TrussDecomposition::decompose(&theme);
        assert!(d.is_empty());
        assert_eq!(d.max_alpha(), None);
        assert!(d.edges_at(0.0).is_empty());
        assert!(d.truss_at(0.0).is_empty());
    }

    #[test]
    fn truss_with_no_surviving_edges_at_zero() {
        // A pure path: every edge dies at α = 0, so L_p is empty even though
        // the theme network has edges.
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        for v in 0..3u32 {
            b.add_transaction(v, &[p]);
        }
        b.add_edge(0, 1).add_edge(1, 2);
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        let theme = ThemeNetwork::induce(&net, &pat);
        let d = TrussDecomposition::decompose(&theme);
        assert!(d.is_empty());
    }
}
