//! Maximal pattern trusses (Definitions 3.3-3.4).

use tc_graph::{EdgeKey, VertexId};
use tc_txdb::Pattern;
use tc_util::HeapSize;

/// A maximal pattern truss `C*_p(α)`: the union of all pattern trusses of a
/// theme network at threshold `α`. Not necessarily connected — theme
/// communities are its connected components.
///
/// Edges are canonical `(min, max)` **global** vertex pairs, sorted; the
/// vertex list is derived (sorted, deduplicated endpoints). An empty edge
/// set means `C*_p(α) = ∅`.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternTruss {
    /// The pattern `p` whose theme network this truss lives in.
    pub pattern: Pattern,
    /// The cohesion threshold `α` the truss was computed at.
    pub alpha: f64,
    /// `E*_p(α)`, canonical and sorted.
    pub edges: Vec<EdgeKey>,
    /// `V*_p(α)`, sorted — exactly the endpoints of `edges`.
    pub vertices: Vec<VertexId>,
}

impl PatternTruss {
    /// Assembles a truss from its edge set, deriving the vertex set.
    pub fn from_edges(pattern: Pattern, alpha: f64, mut edges: Vec<EdgeKey>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let vertices = tc_graph::ktruss::edge_set_vertices(&edges);
        PatternTruss {
            pattern,
            alpha,
            edges,
            vertices,
        }
    }

    /// The empty truss for `pattern` at `alpha`.
    pub fn empty(pattern: Pattern, alpha: f64) -> Self {
        PatternTruss {
            pattern,
            alpha,
            edges: Vec::new(),
            vertices: Vec::new(),
        }
    }

    /// `|E*_p(α)|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// `|V*_p(α)|`.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// `true` iff the truss is empty (pattern is *unqualified*, §5.2).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Membership test for a vertex.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Membership test for a canonical edge.
    pub fn contains_edge(&self, e: EdgeKey) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// `true` iff `self`'s subgraph is contained in `other`'s
    /// (Theorem 5.1's `⊆` relation).
    pub fn is_subgraph_of(&self, other: &PatternTruss) -> bool {
        self.edges.iter().all(|&e| other.contains_edge(e))
    }

    /// Edge-set intersection with another truss — the TCFI pruning space
    /// (Proposition 5.3). Linear merge over the sorted edge lists.
    pub fn intersect_edges(&self, other: &PatternTruss) -> Vec<EdgeKey> {
        let (a, b) = (&self.edges, &other.edges);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }
}

impl HeapSize for PatternTruss {
    fn heap_size(&self) -> usize {
        self.pattern.heap_size()
            + self.edges.capacity() * std::mem::size_of::<EdgeKey>()
            + self.vertices.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_txdb::Item;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn from_edges_derives_vertices() {
        let t = PatternTruss::from_edges(
            pat(&[0]),
            0.1,
            vec![(2, 1), (0, 1)]
                .into_iter()
                .map(|(a, b)| tc_graph::edge_key(a, b))
                .collect(),
        );
        assert_eq!(t.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(t.vertices, vec![0, 1, 2]);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.num_vertices(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_truss() {
        let t = PatternTruss::empty(pat(&[1]), 0.5);
        assert!(t.is_empty());
        assert_eq!(t.num_vertices(), 0);
    }

    #[test]
    fn membership() {
        let t = PatternTruss::from_edges(pat(&[0]), 0.0, vec![(0, 1), (1, 2)]);
        assert!(t.contains_vertex(1));
        assert!(!t.contains_vertex(5));
        assert!(t.contains_edge((0, 1)));
        assert!(!t.contains_edge((0, 2)));
    }

    #[test]
    fn subgraph_relation() {
        let small = PatternTruss::from_edges(pat(&[0, 1]), 0.0, vec![(0, 1)]);
        let big = PatternTruss::from_edges(pat(&[0]), 0.0, vec![(0, 1), (1, 2)]);
        assert!(small.is_subgraph_of(&big));
        assert!(!big.is_subgraph_of(&small));
        assert!(big.is_subgraph_of(&big));
    }

    #[test]
    fn empty_is_subgraph_of_everything() {
        let e = PatternTruss::empty(pat(&[3]), 0.0);
        let big = PatternTruss::from_edges(pat(&[0]), 0.0, vec![(0, 1)]);
        assert!(e.is_subgraph_of(&big));
        assert!(e.is_subgraph_of(&e));
    }

    #[test]
    fn intersection_merge() {
        let a = PatternTruss::from_edges(pat(&[0]), 0.0, vec![(0, 1), (1, 2), (2, 3)]);
        let b = PatternTruss::from_edges(pat(&[1]), 0.0, vec![(1, 2), (2, 3), (3, 4)]);
        assert_eq!(a.intersect_edges(&b), vec![(1, 2), (2, 3)]);
        let disjoint = PatternTruss::from_edges(pat(&[2]), 0.0, vec![(7, 8)]);
        assert!(a.intersect_edges(&disjoint).is_empty());
    }
}
