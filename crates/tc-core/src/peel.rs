//! The shared edge-peeling engine behind MPTD and truss decomposition.
//!
//! Both Algorithm 1 (maximal pattern truss detection) and the §6.1
//! decomposition repeatedly remove *unqualified* edges — edges whose
//! cohesion has dropped to `≤ α` — cascading cohesion updates to the other
//! two edges of every destroyed triangle. [`PeelState`] owns that machinery:
//! initial cohesions, the FIFO queue, and pop-time removal semantics (a
//! triangle is destroyed exactly once, by the first of its edges popped).

use crate::theme::ThemeNetwork;
use tc_util::float;

/// Mutable peeling state over one theme network.
pub struct PeelState<'a> {
    theme: &'a ThemeNetwork,
    /// Edge endpoints by edge id (local vertex ids, `u < v`).
    edge_ends: Vec<(u32, u32)>,
    /// Per-vertex `(neighbor, edge_id)`, sorted by neighbor — lets a merge
    /// over two adjacency lists yield both "other edge" ids of a triangle.
    adj: Vec<Vec<(u32, u32)>>,
    /// Current cohesion per edge (meaningful while not removed).
    cohesion: Vec<f64>,
    removed: Vec<bool>,
    queued: Vec<bool>,
    alive: usize,
}

impl<'a> PeelState<'a> {
    /// Builds the edge structure and computes initial cohesions
    /// (Algorithm 1, lines 1-8): for each edge `(i, j)`,
    /// `eco_ij = Σ_{△ijk} min(f_i, f_j, f_k)`.
    pub fn new(theme: &'a ThemeNetwork) -> Self {
        let g = theme.graph();
        let n = g.num_vertices();
        let m = g.num_edges();

        let mut edge_ends = Vec::with_capacity(m);
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (u, v) in g.edges() {
            let id = edge_ends.len() as u32;
            edge_ends.push((u, v));
            adj[u as usize].push((v, id));
            adj[v as usize].push((u, id));
        }
        // `g.edges()` yields neighbors in sorted order per `u`, but the
        // reverse insertions interleave; sort each list by neighbor id.
        for list in &mut adj {
            list.sort_unstable_by_key(|&(w, _)| w);
        }

        let mut cohesion = vec![0.0f64; m];
        for (id, &(u, v)) in edge_ends.iter().enumerate() {
            let fu = theme.frequency(u);
            let fv = theme.frequency(v);
            let fuv = fu.min(fv);
            let mut eco = 0.0;
            merge_triangles(&adj[u as usize], &adj[v as usize], |_, _, w| {
                eco += fuv.min(theme.frequency(w));
            });
            cohesion[id] = eco;
        }

        PeelState {
            theme,
            edge_ends,
            adj,
            cohesion,
            removed: vec![false; m],
            queued: vec![false; m],
            alive: m,
        }
    }

    /// The theme network being peeled.
    pub fn theme(&self) -> &ThemeNetwork {
        self.theme
    }

    /// Total number of edges (alive or removed). Edge ids are `0..num_edges`
    /// and stay stable across [`PeelState::peel`] calls.
    pub fn num_edges(&self) -> usize {
        self.edge_ends.len()
    }

    /// Number of edges not yet removed.
    pub fn alive_edges(&self) -> usize {
        self.alive
    }

    /// Current cohesion of edge `id` (only meaningful while alive).
    pub fn cohesion(&self, id: u32) -> f64 {
        self.cohesion[id as usize]
    }

    /// Local endpoints of edge `id`.
    pub fn endpoints(&self, id: u32) -> (u32, u32) {
        self.edge_ends[id as usize]
    }

    /// Iterates over the ids of alive edges.
    pub fn alive_edge_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.edge_ends.len() as u32).filter(move |&id| !self.removed[id as usize])
    }

    /// Minimum cohesion among alive edges (`β` of Theorem 6.1), if any.
    pub fn min_alive_cohesion(&self) -> Option<f64> {
        self.alive_edge_ids()
            .map(|id| self.cohesion[id as usize])
            .min_by(f64::total_cmp)
    }

    /// Removes every alive edge whose cohesion is `≤ alpha` (with the
    /// [`float::COHESION_EPS`] tolerance), cascading updates — Algorithm 1,
    /// lines 9-18. Calls `on_remove(edge_id)` for each removal, in removal
    /// order.
    pub fn peel(&mut self, alpha: f64, mut on_remove: impl FnMut(u32)) {
        let mut queue = std::collections::VecDeque::new();
        for id in 0..self.edge_ends.len() as u32 {
            if !self.removed[id as usize]
                && !self.queued[id as usize]
                && float::leq_eps(self.cohesion[id as usize], alpha)
            {
                self.queued[id as usize] = true;
                queue.push_back(id);
            }
        }

        while let Some(id) = queue.pop_front() {
            self.removed[id as usize] = true;
            self.alive -= 1;
            on_remove(id);

            let (u, v) = self.edge_ends[id as usize];
            let fu = self.theme.frequency(u);
            let fv = self.theme.frequency(v);
            let fuv = fu.min(fv);
            // Split borrows: adjacency is immutable during the scan while
            // cohesion/removed/queued mutate.
            let (adj_u, adj_v) = (&self.adj[u as usize], &self.adj[v as usize]);
            let theme = self.theme;
            let removed = &mut self.removed;
            let queued = &mut self.queued;
            let cohesion = &mut self.cohesion;
            let mut newly_unqualified = Vec::new();
            merge_triangles(adj_u, adj_v, |e_uw, e_vw, w| {
                // Triangle (u,v,w) still exists only if neither other edge
                // was removed before this pop.
                if removed[e_uw as usize] || removed[e_vw as usize] {
                    return;
                }
                let t = fuv.min(theme.frequency(w));
                for other in [e_uw, e_vw] {
                    cohesion[other as usize] -= t;
                    if float::leq_eps(cohesion[other as usize], alpha) && !queued[other as usize] {
                        queued[other as usize] = true;
                        newly_unqualified.push(other);
                    }
                }
            });
            queue.extend(newly_unqualified);
        }
    }

    /// The alive edges as **global** canonical keys, sorted.
    pub fn alive_global_edges(&self) -> Vec<tc_graph::EdgeKey> {
        let mut out: Vec<tc_graph::EdgeKey> = self
            .alive_edge_ids()
            .map(|id| self.theme.global_edge(self.edge_ends[id as usize]))
            .collect();
        out.sort_unstable();
        out
    }
}

/// Merges two `(neighbor, edge_id)` adjacency lists sorted by neighbor,
/// invoking `f(edge_a, edge_b, w)` for every common neighbor `w`.
#[inline]
fn merge_triangles(a: &[(u32, u32)], b: &[(u32, u32)], mut f: impl FnMut(u32, u32, u32)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i].1, b[j].1, a[i].0);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatabaseNetworkBuilder;
    use crate::theme::ThemeNetwork;
    use tc_txdb::Pattern;

    /// A triangle where every vertex has frequency `f`.
    fn uniform_triangle(f_num: usize, f_den: usize) -> ThemeNetwork {
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        let q = b.intern_item("q");
        for v in 0..3u32 {
            for _ in 0..f_num {
                b.add_transaction(v, &[p]);
            }
            for _ in 0..(f_den - f_num) {
                b.add_transaction(v, &[q]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        ThemeNetwork::induce(&net, &pat)
    }

    #[test]
    fn initial_cohesion_of_triangle() {
        // f = 0.5 everywhere; each edge sits in one triangle: eco = 0.5.
        let theme = uniform_triangle(1, 2);
        let state = PeelState::new(&theme);
        assert_eq!(state.alive_edges(), 3);
        for id in 0..3 {
            assert!((state.cohesion(id) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn peel_below_threshold_removes_nothing() {
        let theme = uniform_triangle(1, 2);
        let mut state = PeelState::new(&theme);
        let mut removed = Vec::new();
        state.peel(0.4, |e| removed.push(e));
        assert!(removed.is_empty());
        assert_eq!(state.alive_edges(), 3);
    }

    #[test]
    fn peel_at_threshold_removes_all() {
        // eco = 0.5 ≤ α = 0.5 → unqualified (strict > required to survive).
        let theme = uniform_triangle(1, 2);
        let mut state = PeelState::new(&theme);
        let mut removed = Vec::new();
        state.peel(0.5, |e| removed.push(e));
        assert_eq!(removed.len(), 3);
        assert_eq!(state.alive_edges(), 0);
    }

    #[test]
    fn min_alive_cohesion() {
        let theme = uniform_triangle(1, 2);
        let state = PeelState::new(&theme);
        assert!((state.min_alive_cohesion().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cascade_destroys_dependent_edges() {
        // Two triangles sharing edge (1,2); outer edges have eco = min-freq
        // of their single triangle; removing them cascades.
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        for v in 0..4u32 {
            b.add_transaction(v, &[p]); // f = 1.0 everywhere
        }
        b.add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 2)
            .add_edge(1, 3)
            .add_edge(2, 3);
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        let theme = ThemeNetwork::induce(&net, &pat);
        let mut state = PeelState::new(&theme);
        // (1,2) sits in two triangles: eco = 2. Others: eco = 1.
        // Peel at α = 1: every edge dies (outer first, then (1,2) cascades).
        state.peel(1.0, |_| {});
        assert_eq!(state.alive_edges(), 0);
    }

    #[test]
    fn peel_is_monotone_resumable() {
        // Peeling at increasing thresholds matches peeling once at the top.
        let theme = uniform_triangle(1, 2);
        let mut a = PeelState::new(&theme);
        a.peel(0.2, |_| {});
        a.peel(0.5, |_| {});
        let mut b = PeelState::new(&theme);
        b.peel(0.5, |_| {});
        assert_eq!(a.alive_edges(), b.alive_edges());
    }

    #[test]
    fn alive_global_edges_sorted_canonical() {
        let theme = uniform_triangle(1, 2);
        let state = PeelState::new(&theme);
        let edges = state.alive_global_edges();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
