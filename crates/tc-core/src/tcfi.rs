//! Theme Community Finder Intersection (TCFI) — §5.3, the headline miner.
//!
//! TCFI refines TCFA in one line of Algorithm 3 (line 6): the theme network
//! of a level-`k` candidate `p^k = p^{k-1} ∪ q^{k-1}` is induced not from
//! the full network but from `C*_{p^{k-1}}(α) ∩ C*_{q^{k-1}}(α)`, which is
//! sound by the graph-intersection property (Proposition 5.3). Candidates
//! whose parents' trusses do not intersect are pruned without running MPTD
//! at all — and because maximal pattern trusses are typically small local
//! subgraphs scattered across a sparse network (§7.2), this eliminates most
//! of the work.

use crate::miner::Miner;
use crate::mptd::maximal_pattern_truss;
use crate::network::DatabaseNetwork;
use crate::result::{MinerStats, MiningResult};
use crate::tcfa::mine_level_one;
use crate::theme::ThemeNetwork;
use crate::truss::PatternTruss;
use tc_txdb::{apriori, Pattern};
use tc_util::{FxHashMap, Stopwatch};

/// The intersection-pruned miner.
#[derive(Debug, Clone)]
pub struct TcfiMiner {
    /// Safety cap on pattern length (`usize::MAX` = unbounded).
    pub max_len: usize,
}

impl Default for TcfiMiner {
    fn default() -> Self {
        TcfiMiner {
            max_len: usize::MAX,
        }
    }
}

impl TcfiMiner {
    /// A parallel variant of this miner: within each level, candidates are
    /// independent (they only read the previous level's trusses), so they
    /// can be processed concurrently — the same observation Algorithm 4
    /// exploits for the TC-Tree's first layer.
    pub fn parallel(self, threads: usize) -> ParallelTcfiMiner {
        ParallelTcfiMiner {
            max_len: self.max_len,
            threads,
        }
    }
}

impl Miner for TcfiMiner {
    fn name(&self) -> &'static str {
        "TCFI"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        let sw = Stopwatch::start();
        let mut stats = MinerStats::default();
        let mut all: Vec<PatternTruss> = Vec::new();

        let mut level = mine_level_one(network, alpha, &mut stats);

        let mut k = 2usize;
        while !level.is_empty() && k <= self.max_len {
            // Index the level's trusses by pattern; candidate generation
            // returns parent *indices* into the sorted pattern list.
            let mut prev_patterns: Vec<Pattern> = level.iter().map(|t| t.pattern.clone()).collect();
            let by_pattern: FxHashMap<Pattern, PatternTruss> =
                level.drain(..).map(|t| (t.pattern.clone(), t)).collect();

            let candidates = apriori::generate_candidates(&mut prev_patterns);
            stats.candidates_generated += candidates.len();

            let mut next = Vec::new();
            for cand in candidates {
                let left = &by_pattern[&prev_patterns[cand.left]];
                let right = &by_pattern[&prev_patterns[cand.right]];
                let intersection = left.intersect_edges(right);
                if intersection.is_empty() {
                    // Proposition 5.3: C*_{p∪q}(α) ⊆ C*_p(α) ∩ C*_q(α) = ∅.
                    stats.pruned_by_intersection += 1;
                    continue;
                }
                let theme = ThemeNetwork::induce_from_edges(network, &cand.pattern, &intersection);
                if theme.is_trivial() {
                    continue;
                }
                stats.mptd_calls += 1;
                let truss = maximal_pattern_truss(&theme, alpha);
                if !truss.is_empty() {
                    next.push(truss);
                }
            }
            all.extend(by_pattern.into_values());
            level = next;
            k += 1;
        }
        all.append(&mut level);

        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, all, stats)
    }
}

/// TCFI with parallel candidate processing inside each level.
///
/// Produces exactly the same [`MiningResult`] trusses as [`TcfiMiner`] (the
/// level barrier keeps the Apriori frontier identical); only wall-clock and
/// scheduling differ. Counters are accumulated atomically.
#[derive(Debug, Clone)]
pub struct ParallelTcfiMiner {
    /// Safety cap on pattern length.
    pub max_len: usize,
    /// Worker threads per level (clamped to ≥ 1).
    pub threads: usize,
}

impl Default for ParallelTcfiMiner {
    fn default() -> Self {
        ParallelTcfiMiner {
            max_len: usize::MAX,
            threads: 4,
        }
    }
}

impl Miner for ParallelTcfiMiner {
    fn name(&self) -> &'static str {
        "TCFI-par"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let sw = Stopwatch::start();
        let mut stats = MinerStats::default();
        let mut all: Vec<PatternTruss> = Vec::new();
        let threads = self.threads.max(1);

        let mut level = mine_level_one(network, alpha, &mut stats);

        let mut k = 2usize;
        while !level.is_empty() && k <= self.max_len {
            let mut prev_patterns: Vec<Pattern> = level.iter().map(|t| t.pattern.clone()).collect();
            let by_pattern: FxHashMap<Pattern, PatternTruss> =
                level.drain(..).map(|t| (t.pattern.clone(), t)).collect();
            let candidates = apriori::generate_candidates(&mut prev_patterns);
            stats.candidates_generated += candidates.len();

            let mptd_calls = AtomicUsize::new(0);
            let pruned = AtomicUsize::new(0);
            let next_idx = AtomicUsize::new(0);
            let found = parking_lot::Mutex::new(Vec::new());

            std::thread::scope(|scope| {
                for _ in 0..threads.min(candidates.len().max(1)) {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next_idx.fetch_add(1, Ordering::Relaxed);
                            if i >= candidates.len() {
                                break;
                            }
                            let cand = &candidates[i];
                            let left = &by_pattern[&prev_patterns[cand.left]];
                            let right = &by_pattern[&prev_patterns[cand.right]];
                            let intersection = left.intersect_edges(right);
                            if intersection.is_empty() {
                                pruned.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let theme = ThemeNetwork::induce_from_edges(
                                network,
                                &cand.pattern,
                                &intersection,
                            );
                            if theme.is_trivial() {
                                continue;
                            }
                            mptd_calls.fetch_add(1, Ordering::Relaxed);
                            let truss = maximal_pattern_truss(&theme, alpha);
                            if !truss.is_empty() {
                                local.push(truss);
                            }
                        }
                        found.lock().extend(local);
                    });
                }
            });

            stats.mptd_calls += mptd_calls.into_inner();
            stats.pruned_by_intersection += pruned.into_inner();
            all.extend(by_pattern.into_values());
            level = found.into_inner();
            k += 1;
        }
        all.append(&mut level);

        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DatabaseNetwork, DatabaseNetworkBuilder};
    use crate::oracle;
    use crate::tcfa::TcfaMiner;

    fn overlapping_net() -> DatabaseNetwork {
        // Triangle A (vertices 0-2): items {a,b} everywhere.
        // Triangle B (vertices 2-4): items {b,c} everywhere (vertex 2 shared).
        // Far triangle C (vertices 5-7): items {a,c}.
        let mut b = DatabaseNetworkBuilder::new();
        let ia = b.intern_item("a");
        let ib = b.intern_item("b");
        let ic = b.intern_item("c");
        for v in 0..3u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ia, ib]);
            }
        }
        for v in 2..5u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ib, ic]);
            }
        }
        for v in 5..8u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ia, ic]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(2, 3).add_edge(3, 4).add_edge(2, 4);
        b.add_edge(5, 6).add_edge(6, 7).add_edge(5, 7);
        b.add_edge(4, 5); // bridge, not in any triangle
        b.build().unwrap()
    }

    #[test]
    fn identical_results_to_tcfa() {
        let net = overlapping_net();
        for alpha in [0.0, 0.1, 0.3, 0.5, 1.0, 2.0] {
            let fa = TcfaMiner::default().mine(&net, alpha);
            let fi = TcfiMiner::default().mine(&net, alpha);
            assert!(
                fa.same_trusses(&fi),
                "TCFA and TCFI must be exact at alpha = {alpha}: {} vs {} trusses",
                fa.np(),
                fi.np()
            );
        }
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let net = overlapping_net();
        for alpha in [0.0, 0.25, 0.5] {
            let r = TcfiMiner::default().mine(&net, alpha);
            let truth = oracle::exhaustive_mine(&net, alpha, usize::MAX);
            assert_eq!(r.np(), truth.len(), "alpha = {alpha}");
            for (p, edges) in &truth {
                assert_eq!(&r.truss_of(p).unwrap().edges, edges);
            }
        }
    }

    #[test]
    fn intersection_pruning_fires() {
        // {a} lives on triangles A and C; {b} on A∪B; {c} on B and C.
        // Candidate {a,b}: trusses intersect on triangle A → kept.
        // At level 2→3, candidate {a,b,c} joins {a,b} (triangle A) with
        // {a,c} (triangle C) — disjoint trusses → pruned without MPTD.
        let net = overlapping_net();
        let r = TcfiMiner::default().mine(&net, 0.5);
        assert!(
            r.stats.pruned_by_intersection > 0,
            "expected at least one empty-intersection prune"
        );
        // And no {a,b,c} truss exists.
        let ia = net.item_space().get("a").unwrap();
        let ib = net.item_space().get("b").unwrap();
        let ic = net.item_space().get("c").unwrap();
        assert!(r.truss_of(&Pattern::new(vec![ia, ib, ic])).is_none());
    }

    #[test]
    fn fewer_mptd_calls_than_tcfa() {
        let net = overlapping_net();
        let fa = TcfaMiner::default().mine(&net, 0.5);
        let fi = TcfiMiner::default().mine(&net, 0.5);
        assert!(
            fi.stats.mptd_calls <= fa.stats.mptd_calls,
            "TCFI must never call MPTD more often than TCFA ({} vs {})",
            fi.stats.mptd_calls,
            fa.stats.mptd_calls
        );
    }

    #[test]
    fn overlapping_communities_reported() {
        // Vertex 2 belongs to the {a,b} truss and the {b,c} truss — the
        // arbitrary-overlap property §7.4 demonstrates. (α = 0.3 < 0.5 =
        // the cohesion floor set by vertex 2's split frequencies.)
        let net = overlapping_net();
        let r = TcfiMiner::default().mine(&net, 0.3);
        let ia = net.item_space().get("a").unwrap();
        let ib = net.item_space().get("b").unwrap();
        let ic = net.item_space().get("c").unwrap();
        let t_ab = r.truss_of(&Pattern::new(vec![ia, ib])).unwrap();
        let t_bc = r.truss_of(&Pattern::new(vec![ib, ic])).unwrap();
        assert!(t_ab.contains_vertex(2));
        assert!(t_bc.contains_vertex(2));
    }

    #[test]
    fn empty_network() {
        let mut b = DatabaseNetworkBuilder::new();
        b.ensure_vertex(1);
        let net = b.build().unwrap();
        let r = TcfiMiner::default().mine(&net, 0.0);
        assert_eq!(r.np(), 0);
    }

    #[test]
    fn parallel_variant_identical_results() {
        let net = overlapping_net();
        for alpha in [0.0, 0.3, 0.5] {
            let serial = TcfiMiner::default().mine(&net, alpha);
            for threads in [1, 2, 4] {
                let par = TcfiMiner::default().parallel(threads).mine(&net, alpha);
                assert!(
                    serial.same_trusses(&par),
                    "serial vs {threads}-thread TCFI at alpha = {alpha}"
                );
                assert_eq!(serial.stats.mptd_calls, par.stats.mptd_calls);
                assert_eq!(
                    serial.stats.pruned_by_intersection,
                    par.stats.pruned_by_intersection
                );
            }
        }
    }

    #[test]
    fn parallel_empty_network() {
        let mut b = DatabaseNetworkBuilder::new();
        b.ensure_vertex(1);
        let net = b.build().unwrap();
        let r = ParallelTcfiMiner::default().mine(&net, 0.0);
        assert_eq!(r.np(), 0);
        assert_eq!(r.stats.mptd_calls, 0);
    }
}
