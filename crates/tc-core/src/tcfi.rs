//! Theme Community Finder Intersection (TCFI) — §5.3, the headline miner.
//!
//! TCFI refines TCFA in one line of Algorithm 3 (line 6): the theme network
//! of a level-`k` candidate `p^k = p^{k-1} ∪ q^{k-1}` is induced not from
//! the full network but from `C*_{p^{k-1}}(α) ∩ C*_{q^{k-1}}(α)`, which is
//! sound by the graph-intersection property (Proposition 5.3). Candidates
//! whose parents' trusses do not intersect are pruned without running MPTD
//! at all — and because maximal pattern trusses are typically small local
//! subgraphs scattered across a sparse network (§7.2), this eliminates most
//! of the work.

use crate::miner::Miner;
use crate::mptd::maximal_pattern_truss;
use crate::network::DatabaseNetwork;
use crate::result::{MinerStats, MiningResult};
use crate::tcfa::mine_level_one;
use crate::theme::ThemeNetwork;
use crate::truss::PatternTruss;
use std::sync::Arc;
use tc_txdb::{apriori, Item, Pattern};
use tc_util::steal::{Executor, Worker};
use tc_util::{FxHashMap, Stopwatch};

/// The intersection-pruned miner.
#[derive(Debug, Clone)]
pub struct TcfiMiner {
    /// Safety cap on pattern length (`usize::MAX` = unbounded).
    pub max_len: usize,
}

impl Default for TcfiMiner {
    fn default() -> Self {
        TcfiMiner {
            max_len: usize::MAX,
        }
    }
}

impl TcfiMiner {
    /// The work-stealing parallel variant of this miner: candidates are
    /// independent once both of their join parents' trusses are known, so
    /// they can be processed concurrently — and, unlike the per-level pool
    /// of [`LevelBarrierTcfiMiner`], without waiting for the rest of the
    /// level to finish.
    pub fn parallel(self, threads: usize) -> ParallelTcfiMiner {
        ParallelTcfiMiner {
            max_len: self.max_len,
            threads,
        }
    }
}

impl Miner for TcfiMiner {
    fn name(&self) -> &'static str {
        "TCFI"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        let sw = Stopwatch::start();
        let mut stats = MinerStats::default();
        let mut all: Vec<PatternTruss> = Vec::new();

        let mut level = mine_level_one(network, alpha, &mut stats);

        let mut k = 2usize;
        while !level.is_empty() && k <= self.max_len {
            // Index the level's trusses by pattern; candidate generation
            // returns parent *indices* into the sorted pattern list.
            let mut prev_patterns: Vec<Pattern> = level.iter().map(|t| t.pattern.clone()).collect();
            let by_pattern: FxHashMap<Pattern, PatternTruss> =
                level.drain(..).map(|t| (t.pattern.clone(), t)).collect();

            let candidates = apriori::generate_candidates(&mut prev_patterns);
            stats.candidates_generated += candidates.len();

            let mut next = Vec::new();
            for cand in candidates {
                let left = &by_pattern[&prev_patterns[cand.left]];
                let right = &by_pattern[&prev_patterns[cand.right]];
                let intersection = left.intersect_edges(right);
                if intersection.is_empty() {
                    // Proposition 5.3: C*_{p∪q}(α) ⊆ C*_p(α) ∩ C*_q(α) = ∅.
                    stats.pruned_by_intersection += 1;
                    continue;
                }
                let theme = ThemeNetwork::induce_from_edges(network, &cand.pattern, &intersection);
                if theme.is_trivial() {
                    continue;
                }
                stats.mptd_calls += 1;
                let truss = maximal_pattern_truss(&theme, alpha);
                if !truss.is_empty() {
                    next.push(truss);
                }
            }
            all.extend(by_pattern.into_values());
            level = next;
            k += 1;
        }
        all.append(&mut level);

        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, all, stats)
    }
}

/// TCFI on the shared work-stealing executor ([`tc_util::steal`]), with no
/// barrier between Apriori levels.
///
/// Every task is either a level-1 seed (one item) or a join candidate
/// carrying its two parents' trusses. The moment a pattern qualifies, it is
/// joined against the already-qualified patterns sharing its Apriori prefix
/// and the resulting candidates are spawned immediately — a worker can be
/// mining level `k+1` in one community while another is still on level `k`
/// of a different one, so a straggling MPTD call no longer stalls the whole
/// frontier.
///
/// **Exactness contract.** The trusses found are identical to
/// [`TcfiMiner`]'s at any thread count ([`MiningResult::same_trusses`]):
/// a candidate's truss is computed inside the intersection of its parents'
/// trusses exactly as the serial miner does. The *counters* legitimately
/// differ from the serial miner's: crossing the barrier means the global
/// Apriori subset check (every `(k-1)`-sub-pattern qualified, which needs
/// the whole previous level) is traded for the parents-only check, so this
/// miner may generate — and prune or MPTD — a superset of the serial
/// candidates. Anti-monotonicity (Proposition 5.2) guarantees every extra
/// candidate's truss is empty, so the result set is unchanged. All counters
/// are still **deterministic**: they are functions of the qualified-pattern
/// set, not of scheduling, so equal-thread-count runs and different thread
/// counts report identical stats.
#[derive(Debug, Clone)]
pub struct ParallelTcfiMiner {
    /// Safety cap on pattern length.
    pub max_len: usize,
    /// Worker threads (clamped to ≥ 1; 1 runs inline on the caller).
    pub threads: usize,
}

impl Default for ParallelTcfiMiner {
    fn default() -> Self {
        ParallelTcfiMiner {
            max_len: usize::MAX,
            threads: 4,
        }
    }
}

/// A work-stealing task: a level-1 seed or a join of two qualified parents.
enum WsTask {
    Seed(Item),
    Join(Arc<PatternTruss>, Arc<PatternTruss>),
}

/// Per-worker private state: qualified trusses found by this worker plus
/// its share of the counters. Reduced deterministically after the run.
#[derive(Default)]
struct WsState {
    found: Vec<Arc<PatternTruss>>,
    stats: MinerStats,
}

/// Qualified patterns grouped by their Apriori join prefix (the first
/// `k-1` items of a length-`k` pattern); level-1 singletons all share the
/// empty prefix. Guarded by one mutex: it is touched once per *qualified*
/// pattern, which is rare next to candidate processing.
type SiblingGroups = parking_lot::Mutex<FxHashMap<Box<[Item]>, Vec<Arc<PatternTruss>>>>;

/// Records a qualified truss and spawns the join candidates it unlocks:
/// one per already-qualified sibling sharing its Apriori prefix. Spawning
/// from inside the group lock is safe (the executor queue has its own
/// lock) and makes the pairing race-free: each unordered sibling pair is
/// generated exactly once, by whichever of the two qualified later.
fn ws_qualify(
    groups: &SiblingGroups,
    max_len: usize,
    truss: Arc<PatternTruss>,
    state: &mut WsState,
    worker: &Worker<'_, WsTask>,
) {
    state.found.push(truss.clone());
    if truss.pattern.len() >= max_len {
        return;
    }
    let mut groups = groups.lock();
    let siblings = groups.entry(truss.pattern.prefix().into()).or_default();
    for sibling in siblings.iter() {
        worker.spawn(WsTask::Join(sibling.clone(), truss.clone()));
    }
    siblings.push(truss);
}

impl Miner for ParallelTcfiMiner {
    fn name(&self) -> &'static str {
        "TCFI-WS"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        let sw = Stopwatch::start();
        let max_len = self.max_len;
        let groups: SiblingGroups = parking_lot::Mutex::new(FxHashMap::default());

        // Level-1 seeds are always mined (like `mine_level_one`); `max_len`
        // only caps how deep qualified patterns are joined further.
        let seeds: Vec<WsTask> = network
            .items_in_use()
            .into_iter()
            .map(WsTask::Seed)
            .collect();
        let states = Executor::new(self.threads).run(
            seeds,
            |_| WsState::default(),
            |state, task, worker| match task {
                WsTask::Seed(item) => {
                    state.stats.candidates_generated += 1;
                    let pattern = Pattern::singleton(item);
                    let theme = ThemeNetwork::induce(network, &pattern);
                    if theme.is_trivial() {
                        return;
                    }
                    state.stats.mptd_calls += 1;
                    let truss = maximal_pattern_truss(&theme, alpha);
                    if !truss.is_empty() {
                        ws_qualify(&groups, max_len, Arc::new(truss), state, worker);
                    }
                }
                WsTask::Join(left, right) => {
                    state.stats.candidates_generated += 1;
                    let intersection = left.intersect_edges(&right);
                    if intersection.is_empty() {
                        // Proposition 5.3, exactly as the serial miner.
                        state.stats.pruned_by_intersection += 1;
                        return;
                    }
                    let pattern = left.pattern.union(&right.pattern);
                    let theme = ThemeNetwork::induce_from_edges(network, &pattern, &intersection);
                    if theme.is_trivial() {
                        return;
                    }
                    state.stats.mptd_calls += 1;
                    let truss = maximal_pattern_truss(&theme, alpha);
                    if !truss.is_empty() {
                        ws_qualify(&groups, max_len, Arc::new(truss), state, worker);
                    }
                }
            },
        );

        // Deterministic reduction: per-worker states arrive in worker-index
        // order; the counters are order-insensitive sums and the trusses are
        // canonically re-sorted by `MiningResult::new`.
        let mut stats = MinerStats::default();
        let mut found: Vec<Arc<PatternTruss>> = Vec::new();
        for state in states {
            stats.mptd_calls += state.stats.mptd_calls;
            stats.candidates_generated += state.stats.candidates_generated;
            stats.pruned_by_intersection += state.stats.pruned_by_intersection;
            found.extend(state.found);
        }
        // Dropping the sibling groups releases the second Arc reference on
        // every registered truss, so the unwrap below is almost always free.
        drop(groups);
        let trusses = found
            .into_iter()
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|shared| (*shared).clone()))
            .collect();

        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, trusses, stats)
    }
}

/// The pre-executor parallel TCFI: a per-level thread pool with a hard
/// barrier between Apriori levels, kept as the measured baseline that
/// [`ParallelTcfiMiner`] is benchmarked against (`throughput_bench`).
///
/// Produces exactly the same [`MiningResult`] trusses **and counters** as
/// [`TcfiMiner`] (the level barrier keeps the Apriori frontier identical);
/// only wall-clock and scheduling differ. Each worker collects
/// `(candidate_index, truss)` pairs privately; the merge joins workers in
/// spawn order and then sorts by candidate index, so the level handed to
/// the next round is in candidate order — identical to the serial miner's —
/// regardless of thread interleaving.
#[derive(Debug, Clone)]
pub struct LevelBarrierTcfiMiner {
    /// Safety cap on pattern length.
    pub max_len: usize,
    /// Worker threads per level (clamped to ≥ 1).
    pub threads: usize,
}

impl Default for LevelBarrierTcfiMiner {
    fn default() -> Self {
        LevelBarrierTcfiMiner {
            max_len: usize::MAX,
            threads: 4,
        }
    }
}

impl Miner for LevelBarrierTcfiMiner {
    fn name(&self) -> &'static str {
        "TCFI-barrier"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let sw = Stopwatch::start();
        let mut stats = MinerStats::default();
        let mut all: Vec<PatternTruss> = Vec::new();
        let threads = self.threads.max(1);

        let mut level = mine_level_one(network, alpha, &mut stats);

        let mut k = 2usize;
        while !level.is_empty() && k <= self.max_len {
            let mut prev_patterns: Vec<Pattern> = level.iter().map(|t| t.pattern.clone()).collect();
            let by_pattern: FxHashMap<Pattern, PatternTruss> =
                level.drain(..).map(|t| (t.pattern.clone(), t)).collect();
            let candidates = apriori::generate_candidates(&mut prev_patterns);
            stats.candidates_generated += candidates.len();

            let next_idx = AtomicUsize::new(0);
            let (found, mptd_calls, pruned) = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads.min(candidates.len().max(1)))
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local: Vec<(usize, PatternTruss)> = Vec::new();
                            let (mut calls, mut pruned) = (0usize, 0usize);
                            loop {
                                let i = next_idx.fetch_add(1, Ordering::Relaxed);
                                if i >= candidates.len() {
                                    break;
                                }
                                let cand = &candidates[i];
                                let left = &by_pattern[&prev_patterns[cand.left]];
                                let right = &by_pattern[&prev_patterns[cand.right]];
                                let intersection = left.intersect_edges(right);
                                if intersection.is_empty() {
                                    pruned += 1;
                                    continue;
                                }
                                let theme = ThemeNetwork::induce_from_edges(
                                    network,
                                    &cand.pattern,
                                    &intersection,
                                );
                                if theme.is_trivial() {
                                    continue;
                                }
                                calls += 1;
                                let truss = maximal_pattern_truss(&theme, alpha);
                                if !truss.is_empty() {
                                    local.push((i, truss));
                                }
                            }
                            (local, calls, pruned)
                        })
                    })
                    .collect();
                // Deterministic merge: workers join in spawn order, then the
                // level is sorted by candidate index — the order the serial
                // miner would have produced.
                let mut found: Vec<(usize, PatternTruss)> = Vec::new();
                let (mut calls, mut pruned) = (0usize, 0usize);
                for handle in handles {
                    let (local, c, p) = handle.join().expect("level worker panicked");
                    found.extend(local);
                    calls += c;
                    pruned += p;
                }
                found.sort_unstable_by_key(|&(i, _)| i);
                (found, calls, pruned)
            });

            stats.mptd_calls += mptd_calls;
            stats.pruned_by_intersection += pruned;
            all.extend(by_pattern.into_values());
            level = found.into_iter().map(|(_, t)| t).collect();
            k += 1;
        }
        all.append(&mut level);

        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DatabaseNetwork, DatabaseNetworkBuilder};
    use crate::oracle;
    use crate::tcfa::TcfaMiner;

    fn overlapping_net() -> DatabaseNetwork {
        // Triangle A (vertices 0-2): items {a,b} everywhere.
        // Triangle B (vertices 2-4): items {b,c} everywhere (vertex 2 shared).
        // Far triangle C (vertices 5-7): items {a,c}.
        let mut b = DatabaseNetworkBuilder::new();
        let ia = b.intern_item("a");
        let ib = b.intern_item("b");
        let ic = b.intern_item("c");
        for v in 0..3u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ia, ib]);
            }
        }
        for v in 2..5u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ib, ic]);
            }
        }
        for v in 5..8u32 {
            for _ in 0..4 {
                b.add_transaction(v, &[ia, ic]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(2, 3).add_edge(3, 4).add_edge(2, 4);
        b.add_edge(5, 6).add_edge(6, 7).add_edge(5, 7);
        b.add_edge(4, 5); // bridge, not in any triangle
        b.build().unwrap()
    }

    #[test]
    fn identical_results_to_tcfa() {
        let net = overlapping_net();
        for alpha in [0.0, 0.1, 0.3, 0.5, 1.0, 2.0] {
            let fa = TcfaMiner::default().mine(&net, alpha);
            let fi = TcfiMiner::default().mine(&net, alpha);
            assert!(
                fa.same_trusses(&fi),
                "TCFA and TCFI must be exact at alpha = {alpha}: {} vs {} trusses",
                fa.np(),
                fi.np()
            );
        }
    }

    #[test]
    fn matches_exhaustive_oracle() {
        let net = overlapping_net();
        for alpha in [0.0, 0.25, 0.5] {
            let r = TcfiMiner::default().mine(&net, alpha);
            let truth = oracle::exhaustive_mine(&net, alpha, usize::MAX);
            assert_eq!(r.np(), truth.len(), "alpha = {alpha}");
            for (p, edges) in &truth {
                assert_eq!(&r.truss_of(p).unwrap().edges, edges);
            }
        }
    }

    #[test]
    fn intersection_pruning_fires() {
        // {a} lives on triangles A and C; {b} on A∪B; {c} on B and C.
        // Candidate {a,b}: trusses intersect on triangle A → kept.
        // At level 2→3, candidate {a,b,c} joins {a,b} (triangle A) with
        // {a,c} (triangle C) — disjoint trusses → pruned without MPTD.
        let net = overlapping_net();
        let r = TcfiMiner::default().mine(&net, 0.5);
        assert!(
            r.stats.pruned_by_intersection > 0,
            "expected at least one empty-intersection prune"
        );
        // And no {a,b,c} truss exists.
        let ia = net.item_space().get("a").unwrap();
        let ib = net.item_space().get("b").unwrap();
        let ic = net.item_space().get("c").unwrap();
        assert!(r.truss_of(&Pattern::new(vec![ia, ib, ic])).is_none());
    }

    #[test]
    fn fewer_mptd_calls_than_tcfa() {
        let net = overlapping_net();
        let fa = TcfaMiner::default().mine(&net, 0.5);
        let fi = TcfiMiner::default().mine(&net, 0.5);
        assert!(
            fi.stats.mptd_calls <= fa.stats.mptd_calls,
            "TCFI must never call MPTD more often than TCFA ({} vs {})",
            fi.stats.mptd_calls,
            fa.stats.mptd_calls
        );
    }

    #[test]
    fn overlapping_communities_reported() {
        // Vertex 2 belongs to the {a,b} truss and the {b,c} truss — the
        // arbitrary-overlap property §7.4 demonstrates. (α = 0.3 < 0.5 =
        // the cohesion floor set by vertex 2's split frequencies.)
        let net = overlapping_net();
        let r = TcfiMiner::default().mine(&net, 0.3);
        let ia = net.item_space().get("a").unwrap();
        let ib = net.item_space().get("b").unwrap();
        let ic = net.item_space().get("c").unwrap();
        let t_ab = r.truss_of(&Pattern::new(vec![ia, ib])).unwrap();
        let t_bc = r.truss_of(&Pattern::new(vec![ib, ic])).unwrap();
        assert!(t_ab.contains_vertex(2));
        assert!(t_bc.contains_vertex(2));
    }

    #[test]
    fn empty_network() {
        let mut b = DatabaseNetworkBuilder::new();
        b.ensure_vertex(1);
        let net = b.build().unwrap();
        let r = TcfiMiner::default().mine(&net, 0.0);
        assert_eq!(r.np(), 0);
    }

    /// A larger deterministic network (pseudo-random via a hand-rolled
    /// LCG — tc-core has no rand dependency): several planted triangles
    /// with overlapping item sets plus noise edges, big enough to give the
    /// parallel miners real multi-level candidate frontiers.
    fn lcg_net(seed: u64) -> DatabaseNetwork {
        let mut state = seed | 1;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut b = DatabaseNetworkBuilder::new();
        let items: Vec<_> = (0..8).map(|i| b.intern_item(&format!("i{i}"))).collect();
        // 10 triangles over 30 vertices; triangle t uses a 3-item theme.
        for t in 0..10u32 {
            let (u, v, w) = (3 * t, 3 * t + 1, 3 * t + 2);
            b.add_edge(u, v).add_edge(v, w).add_edge(u, w);
            let theme: Vec<_> = (0..3).map(|j| items[((t as usize) + j) % 8]).collect();
            for vertex in [u, v, w] {
                for _ in 0..3 {
                    b.add_transaction(vertex, &theme);
                }
                // Noise item.
                b.add_transaction(vertex, &[items[next(8) as usize]]);
            }
        }
        // Noise edges stitching triangles together.
        for _ in 0..12 {
            let (u, v) = (next(30) as u32, next(30) as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn work_stealing_identical_trusses_to_serial() {
        for net in [overlapping_net(), lcg_net(0xC0FFEE)] {
            for alpha in [0.0, 0.3, 0.5] {
                let serial = TcfiMiner::default().mine(&net, alpha);
                for threads in [1, 2, 4, 8] {
                    let par = TcfiMiner::default().parallel(threads).mine(&net, alpha);
                    assert!(
                        serial.same_trusses(&par),
                        "serial vs {threads}-thread WS TCFI at alpha = {alpha}: {} vs {}",
                        serial.np(),
                        par.np()
                    );
                    // Crossing the barrier trades the global Apriori subset
                    // check for the parents-only check, so the WS miner may
                    // attempt a superset of the serial candidates — never
                    // fewer (see the ParallelTcfiMiner docs).
                    assert!(par.stats.candidates_generated >= serial.stats.candidates_generated);
                    assert!(par.stats.mptd_calls >= serial.stats.mptd_calls);
                    assert!(
                        par.stats.pruned_by_intersection >= serial.stats.pruned_by_intersection
                    );
                }
            }
        }
    }

    #[test]
    fn work_stealing_counters_deterministic_across_threads_and_runs() {
        // The WS counters are functions of the qualified-pattern set, not
        // of scheduling: every thread count and every repetition must
        // report identical stats.
        let net = lcg_net(0xBEEF);
        let reference = TcfiMiner::default().parallel(1).mine(&net, 0.2);
        for threads in [1, 2, 8] {
            for _ in 0..3 {
                let r = TcfiMiner::default().parallel(threads).mine(&net, 0.2);
                assert!(reference.same_trusses(&r), "threads = {threads}");
                assert_eq!(reference.stats.mptd_calls, r.stats.mptd_calls);
                assert_eq!(
                    reference.stats.candidates_generated,
                    r.stats.candidates_generated
                );
                assert_eq!(
                    reference.stats.pruned_by_intersection,
                    r.stats.pruned_by_intersection
                );
            }
        }
    }

    #[test]
    fn work_stealing_respects_max_len() {
        let net = overlapping_net();
        for max_len in [1, 2] {
            let serial = TcfiMiner { max_len }.mine(&net, 0.0);
            let par = TcfiMiner { max_len }.parallel(4).mine(&net, 0.0);
            assert!(serial.same_trusses(&par), "max_len = {max_len}");
            assert!(par.trusses.iter().all(|t| t.pattern.len() <= max_len));
        }
    }

    #[test]
    fn level_barrier_identical_results_and_counters() {
        // The barrier pool keeps the serial Apriori frontier, so trusses
        // AND counters must match the serial miner exactly.
        for net in [overlapping_net(), lcg_net(0xF00D)] {
            for alpha in [0.0, 0.3, 0.5] {
                let serial = TcfiMiner::default().mine(&net, alpha);
                for threads in [1, 2, 4, 8] {
                    let par = LevelBarrierTcfiMiner {
                        max_len: usize::MAX,
                        threads,
                    }
                    .mine(&net, alpha);
                    assert!(
                        serial.same_trusses(&par),
                        "serial vs {threads}-thread barrier TCFI at alpha = {alpha}"
                    );
                    assert_eq!(serial.stats.mptd_calls, par.stats.mptd_calls);
                    assert_eq!(
                        serial.stats.candidates_generated,
                        par.stats.candidates_generated
                    );
                    assert_eq!(
                        serial.stats.pruned_by_intersection,
                        par.stats.pruned_by_intersection
                    );
                }
            }
        }
    }

    #[test]
    fn level_barrier_merge_is_deterministic() {
        // Regression test for the old `Mutex<Vec<_>>` collection whose
        // ordering depended on thread interleaving: per-worker collection
        // plus the candidate-index merge must make repeated
        // multi-threaded runs bit-for-bit reproducible.
        let net = lcg_net(0xDEAD);
        let reference = LevelBarrierTcfiMiner {
            max_len: usize::MAX,
            threads: 1,
        }
        .mine(&net, 0.2);
        for threads in [2, 8] {
            for _ in 0..4 {
                let r = LevelBarrierTcfiMiner {
                    max_len: usize::MAX,
                    threads,
                }
                .mine(&net, 0.2);
                assert_eq!(reference.trusses.len(), r.trusses.len());
                for (a, b) in reference.trusses.iter().zip(&r.trusses) {
                    assert_eq!(a.pattern, b.pattern);
                    assert_eq!(a.edges, b.edges);
                    assert_eq!(a.vertices, b.vertices);
                }
                assert_eq!(reference.stats.mptd_calls, r.stats.mptd_calls);
                assert_eq!(
                    reference.stats.candidates_generated,
                    r.stats.candidates_generated
                );
                assert_eq!(
                    reference.stats.pruned_by_intersection,
                    r.stats.pruned_by_intersection
                );
            }
        }
    }

    #[test]
    fn parallel_empty_network() {
        let mut b = DatabaseNetworkBuilder::new();
        b.ensure_vertex(1);
        let net = b.build().unwrap();
        let r = ParallelTcfiMiner::default().mine(&net, 0.0);
        assert_eq!(r.np(), 0);
        assert_eq!(r.stats.mptd_calls, 0);
        let r = LevelBarrierTcfiMiner::default().mine(&net, 0.0);
        assert_eq!(r.np(), 0);
        assert_eq!(r.stats.mptd_calls, 0);
    }
}
