//! Theme Community Scanner — the baseline of §4.2.
//!
//! TCS pre-filters candidate themes with a frequency threshold `ε`: the
//! candidate set is `P = {p | ∃ v_i, f_i(p) > ε}`, gathered by frequent-
//! itemset mining over every vertex database. MPTD then runs on each
//! candidate's theme network. With `ε > 0` TCS trades accuracy for speed —
//! a low-frequency pattern can still form a dense truss and is lost (§7.1);
//! with `ε = 0` it is exact but enumerates every occurring pattern.

use crate::miner::Miner;
use crate::mptd::maximal_pattern_truss;
use crate::network::DatabaseNetwork;
use crate::result::{MinerStats, MiningResult};
use crate::theme::ThemeNetwork;
use tc_graph::VertexId;
use tc_txdb::Pattern;
use tc_util::Stopwatch;

/// The TCS baseline miner.
#[derive(Debug, Clone)]
pub struct TcsMiner {
    /// The pattern-frequency pre-filter `ε` (strict: `f_i(p) > ε`).
    pub epsilon: f64,
    /// Maximum pattern length to enumerate (guards the exponential blow-up;
    /// `usize::MAX` for unbounded, as in the paper).
    pub max_len: usize,
}

impl Default for TcsMiner {
    fn default() -> Self {
        TcsMiner {
            epsilon: 0.1,
            max_len: usize::MAX,
        }
    }
}

impl TcsMiner {
    /// A TCS miner with the given `ε`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        TcsMiner {
            epsilon,
            ..Self::default()
        }
    }

    /// The candidate pattern set `P = {p | ∃ v_i, f_i(p) > ε}`, sorted.
    pub fn candidate_patterns(&self, network: &DatabaseNetwork) -> Vec<Pattern> {
        let mut seen: std::collections::BTreeSet<Pattern> = std::collections::BTreeSet::new();
        for v in 0..network.num_vertices() as VertexId {
            tc_txdb::eclat::for_each_frequent_pattern(
                network.database(v),
                self.epsilon,
                self.max_len,
                |p, _| {
                    seen.insert(p.clone());
                },
            );
        }
        seen.into_iter().collect()
    }
}

impl Miner for TcsMiner {
    fn name(&self) -> &'static str {
        "TCS"
    }

    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult {
        let sw = Stopwatch::start();
        let mut stats = MinerStats::default();
        let candidates = self.candidate_patterns(network);
        stats.candidates_generated = candidates.len();

        let mut trusses = Vec::new();
        for pattern in candidates {
            // §4.2: "for each candidate pattern p ∈ P, we induce theme
            // network G_p" — from the full network, like TCFA.
            let theme = ThemeNetwork::induce_scan(network, &pattern);
            if theme.is_trivial() {
                continue;
            }
            stats.mptd_calls += 1;
            let truss = maximal_pattern_truss(&theme, alpha);
            if !truss.is_empty() {
                trusses.push(truss);
            }
        }
        stats.elapsed_secs = sw.elapsed_secs();
        MiningResult::new(alpha, trusses, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatabaseNetworkBuilder;
    use crate::oracle;

    /// Two triangles: one whose members buy "tea" in every transaction, one
    /// whose members buy "coffee" rarely (f = 0.2 on every member, nowhere
    /// else) but are densely connected.
    fn two_triangles() -> DatabaseNetwork {
        let mut b = DatabaseNetworkBuilder::new();
        let tea = b.intern_item("tea");
        let coffee = b.intern_item("coffee");
        let noise = b.intern_item("noise");
        for v in 0..3u32 {
            for _ in 0..5 {
                b.add_transaction(v, &[tea]);
            }
        }
        for v in 3..6u32 {
            b.add_transaction(v, &[coffee]);
            for _ in 0..4 {
                b.add_transaction(v, &[noise]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
        b.build().unwrap()
    }

    #[test]
    fn exact_with_zero_epsilon() {
        let net = two_triangles();
        let r = TcsMiner::with_epsilon(0.0).mine(&net, 0.1);
        let truth = oracle::exhaustive_mine(&net, 0.1, usize::MAX);
        assert_eq!(r.np(), truth.len());
        for (p, edges) in &truth {
            assert_eq!(&r.truss_of(p).unwrap().edges, edges);
        }
    }

    #[test]
    fn prefilter_loses_low_frequency_truss() {
        // The §7.1 accuracy-loss phenomenon: at ε = 0.3, "coffee" (f = 0.2
        // on *all* vertices that have it) never becomes a candidate, even
        // though at α = 0.1 its truss is valid (eco = 0.2 > 0.1). A pattern
        // with low frequency everywhere can still form a dense truss.
        let net = two_triangles();
        let coffee = net.item_space().get("coffee").unwrap();
        let p = Pattern::singleton(coffee);

        let exact = TcsMiner::with_epsilon(0.0).mine(&net, 0.1);
        let lossy = TcsMiner::with_epsilon(0.3).mine(&net, 0.1);
        let full = exact.truss_of(&p).unwrap();
        assert_eq!(full.vertices, vec![3, 4, 5]);
        assert!(
            lossy.truss_of(&p).is_none(),
            "ε-prefilter drops the low-frequency theme entirely"
        );
        assert!(lossy.np() < exact.np());
        assert!(lossy.nv() < exact.nv());
    }

    #[test]
    fn candidate_patterns_respect_epsilon_strictness() {
        let net = two_triangles();
        let tea = net.item_space().get("tea").unwrap();
        let coffee = net.item_space().get("coffee").unwrap();
        // f(coffee) = 0.2 exactly on vertices 3..6: ε = 0.2 must exclude it
        // (strict inequality), while tea (f = 1.0 on 0..3) stays.
        let cands = TcsMiner::with_epsilon(0.2).candidate_patterns(&net);
        assert!(cands.contains(&Pattern::singleton(tea)));
        assert!(!cands.contains(&Pattern::singleton(coffee)));
        // ε = 1.0 excludes everything.
        assert!(TcsMiner::with_epsilon(1.0)
            .candidate_patterns(&net)
            .is_empty());
    }

    #[test]
    fn stats_populated() {
        let net = two_triangles();
        let r = TcsMiner::with_epsilon(0.0).mine(&net, 0.1);
        assert!(r.stats.candidates_generated >= r.stats.mptd_calls);
        assert!(r.stats.mptd_calls > 0);
        assert_eq!(r.stats.pruned_by_intersection, 0);
    }

    #[test]
    fn max_len_caps_candidates() {
        let net = two_triangles();
        let mut miner = TcsMiner::with_epsilon(0.0);
        miner.max_len = 1;
        let cands = miner.candidate_patterns(&net);
        assert!(cands.iter().all(|p| p.len() == 1));
    }
}
