//! The database network `G = (V, E, D, S)` (paper §3.1).

use std::sync::Arc;
use tc_graph::{EdgeKey, GraphBuilder, UGraph, VertexId};
use tc_txdb::database::TransactionDbBuilder;
use tc_txdb::{Item, ItemSpace, Pattern, TransactionDb};
use tc_util::{FxHashMap, HeapSize};

/// Errors raised while assembling a [`DatabaseNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge or transaction referenced a vertex id beyond `u32` limits.
    VertexOverflow,
    /// A transaction used an [`Item`] never interned in the item space.
    UnknownItem(Item),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOverflow => write!(f, "vertex id exceeds u32 range"),
            BuildError::UnknownItem(i) => write!(f, "item {i} was not interned in the item space"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Constructs a [`DatabaseNetwork`] incrementally.
///
/// ```
/// use tc_core::DatabaseNetworkBuilder;
///
/// let mut b = DatabaseNetworkBuilder::new();
/// let beer = b.intern_item("beer");
/// b.add_transaction(0, &[beer]);
/// b.add_transaction(1, &[beer]);
/// b.add_edge(0, 1);
/// let network = b.build().unwrap();
/// assert_eq!(network.num_vertices(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DatabaseNetworkBuilder {
    items: ItemSpace,
    graph: GraphBuilder,
    databases: Vec<TransactionDbBuilder>,
    max_vertex: Option<VertexId>,
}

impl DatabaseNetworkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an item name, returning its id.
    pub fn intern_item(&mut self, name: &str) -> Item {
        self.items.intern(name)
    }

    /// Pre-registers an item space (e.g. from a generator's vocabulary).
    pub fn set_item_space(&mut self, items: ItemSpace) {
        self.items = items;
    }

    /// Read access to the item space under construction.
    pub fn item_space(&self) -> &ItemSpace {
        &self.items
    }

    fn touch(&mut self, v: VertexId) {
        self.max_vertex = Some(self.max_vertex.map_or(v, |m| m.max(v)));
        if self.databases.len() <= v as usize {
            self.databases
                .resize_with(v as usize + 1, TransactionDbBuilder::new);
        }
    }

    /// Appends a transaction (an itemset) to vertex `v`'s database.
    pub fn add_transaction(&mut self, v: VertexId, items: &[Item]) -> &mut Self {
        self.touch(v);
        self.databases[v as usize].add_transaction(items.iter().copied());
        self
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self loops, like [`GraphBuilder::add_edge`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.touch(u);
        self.touch(v);
        self.graph.add_edge(u, v);
        self
    }

    /// Guarantees vertex `v` exists even if isolated and database-less.
    pub fn ensure_vertex(&mut self, v: VertexId) -> &mut Self {
        self.touch(v);
        self.graph.ensure_vertex(v);
        self
    }

    /// Freezes into an immutable [`DatabaseNetwork`].
    pub fn build(mut self) -> Result<DatabaseNetwork, BuildError> {
        if let Some(m) = self.max_vertex {
            self.graph.ensure_vertex(m);
        }
        let graph = self.graph.build();
        let n = graph.num_vertices();
        let num_items = self.items.len() as u32;
        let mut databases = Vec::with_capacity(n);
        for b in self.databases.drain(..) {
            databases.push(Arc::new(b.build()));
        }
        databases.resize_with(n, || Arc::new(TransactionDb::new()));

        // Validate items and build the inverted index.
        for db in &databases {
            for item in db.items() {
                if item.0 >= num_items {
                    return Err(BuildError::UnknownItem(item));
                }
            }
        }
        let item_index = build_item_index(&databases);
        Ok(DatabaseNetwork {
            graph,
            databases,
            items: self.items,
            item_index,
        })
    }
}

fn build_item_index(databases: &[Arc<TransactionDb>]) -> FxHashMap<Item, Vec<(VertexId, f64)>> {
    let mut index: FxHashMap<Item, Vec<(VertexId, f64)>> = FxHashMap::default();
    for (v, db) in databases.iter().enumerate() {
        for item in db.items() {
            let f = db.item_frequency(item);
            if f > 0.0 {
                index.entry(item).or_default().push((v as VertexId, f));
            }
        }
    }
    for list in index.values_mut() {
        list.sort_unstable_by_key(|&(v, _)| v);
    }
    index
}

/// An immutable database network: graph + per-vertex transaction databases
/// + the global item space, with an inverted `item → vertices` index.
///
/// Vertex databases are shared (`Arc`) so that BFS-sampled subnetworks
/// (§7.1) reuse them without copying.
#[derive(Debug, Clone)]
pub struct DatabaseNetwork {
    graph: UGraph,
    databases: Vec<Arc<TransactionDb>>,
    items: ItemSpace,
    /// item → sorted `(vertex, f_v(item))` pairs with positive frequency.
    item_index: FxHashMap<Item, Vec<(VertexId, f64)>>,
}

impl DatabaseNetwork {
    /// Number of vertices `|V|`.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// The underlying simple graph.
    pub fn graph(&self) -> &UGraph {
        &self.graph
    }

    /// The global item space `S`.
    pub fn item_space(&self) -> &ItemSpace {
        &self.items
    }

    /// Vertex `v`'s transaction database.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    pub fn database(&self, v: VertexId) -> &TransactionDb {
        &self.databases[v as usize]
    }

    /// `f_v(p)`: frequency of `pattern` on vertex `v`.
    pub fn frequency(&self, v: VertexId, pattern: &Pattern) -> f64 {
        self.databases[v as usize].frequency(pattern)
    }

    /// The vertices on which `item` has positive frequency, with those
    /// frequencies, sorted by vertex id. Empty slice if the item occurs
    /// nowhere.
    pub fn vertices_with_item(&self, item: Item) -> &[(VertexId, f64)] {
        self.item_index.get(&item).map_or(&[], Vec::as_slice)
    }

    /// The items that occur in at least one vertex database, sorted by id.
    /// This is the level-1 candidate set of TCFA/TCFI — items of `S` never
    /// stored anywhere cannot form a theme.
    pub fn items_in_use(&self) -> Vec<Item> {
        let mut items: Vec<Item> = self.item_index.keys().copied().collect();
        items.sort_unstable();
        items
    }

    /// The candidate vertex set for a pattern: vertices whose database
    /// contains **every** item of the pattern (sorted ascending). Frequency
    /// may still be zero (items never co-occurring in one transaction), so
    /// callers must re-check with [`DatabaseNetwork::frequency`].
    pub fn candidate_vertices(&self, pattern: &Pattern) -> Vec<VertexId> {
        let mut lists: Vec<&[(VertexId, f64)]> = Vec::with_capacity(pattern.len());
        for item in pattern.iter() {
            let list = self.vertices_with_item(item);
            if list.is_empty() {
                return Vec::new();
            }
            lists.push(list);
        }
        if lists.is_empty() {
            return (0..self.num_vertices() as VertexId).collect();
        }
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<VertexId> = lists[0].iter().map(|&(v, _)| v).collect();
        for list in &lists[1..] {
            let mut out = Vec::with_capacity(acc.len().min(list.len()));
            let (mut i, mut j) = (0, 0);
            while i < acc.len() && j < list.len() {
                match acc[i].cmp(&list[j].0) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(acc[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            acc = out;
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// The subnetwork spanned by `edges` (e.g. a BFS sample, §7.1).
    ///
    /// Vertices incident to the edges are renumbered compactly; their
    /// databases are shared with `self` via `Arc`. The item space is carried
    /// over unchanged.
    pub fn induced_subnetwork(&self, edges: &[EdgeKey]) -> DatabaseNetwork {
        let vertices = tc_graph::ktruss::edge_set_vertices(edges);
        let remap: FxHashMap<VertexId, VertexId> = vertices
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new as VertexId))
            .collect();
        let mut gb = GraphBuilder::with_capacity(edges.len());
        for &(u, v) in edges {
            gb.add_edge(remap[&u], remap[&v]);
        }
        if let Some(last) = vertices.len().checked_sub(1) {
            gb.ensure_vertex(last as VertexId);
        }
        let databases: Vec<Arc<TransactionDb>> = vertices
            .iter()
            .map(|&old| Arc::clone(&self.databases[old as usize]))
            .collect();
        let item_index = build_item_index(&databases);
        DatabaseNetwork {
            graph: gb.build(),
            databases,
            items: self.items.clone(),
            item_index,
        }
    }

    /// Summary statistics in the shape of the paper's Table 2.
    pub fn stats(&self) -> NetworkStats {
        let mut transactions = 0usize;
        let mut items_total = 0usize;
        for db in &self.databases {
            transactions += db.num_transactions();
            items_total += db.total_item_occurrences();
        }
        NetworkStats {
            vertices: self.num_vertices(),
            edges: self.num_edges(),
            transactions,
            items_total,
            items_unique: self.items.len(),
        }
    }
}

impl HeapSize for DatabaseNetwork {
    fn heap_size(&self) -> usize {
        let dbs: usize = self.databases.iter().map(|d| d.heap_size()).sum();
        let index: usize = self
            .item_index
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<(VertexId, f64)>())
            .sum();
        self.graph.heap_size() + dbs + index + self.items.heap_size()
    }
}

/// The Table 2 statistics of a database network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// `|V|`.
    pub vertices: usize,
    /// `|E|`.
    pub edges: usize,
    /// Total transactions across all vertex databases.
    pub transactions: usize,
    /// Total item occurrences stored in all vertex databases.
    pub items_total: usize,
    /// `|S|` — unique items.
    pub items_unique: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DatabaseNetwork {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        let z = b.intern_item("z");
        // v0: x twice, y once; v1: x once; v2: y,z; v3: empty db.
        b.add_transaction(0, &[x, y]);
        b.add_transaction(0, &[x]);
        b.add_transaction(1, &[x]);
        b.add_transaction(2, &[y, z]);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 0)
            .add_edge(2, 3);
        b.build().unwrap()
    }

    #[test]
    fn basic_shape() {
        let n = toy();
        assert_eq!(n.num_vertices(), 4);
        assert_eq!(n.num_edges(), 4);
        assert_eq!(n.item_space().len(), 3);
    }

    #[test]
    fn frequencies() {
        let n = toy();
        let x = n.item_space().get("x").unwrap();
        let y = n.item_space().get("y").unwrap();
        assert_eq!(n.frequency(0, &Pattern::singleton(x)), 1.0);
        assert_eq!(n.frequency(0, &Pattern::singleton(y)), 0.5);
        assert_eq!(n.frequency(1, &Pattern::singleton(y)), 0.0);
        assert_eq!(n.frequency(3, &Pattern::singleton(x)), 0.0, "empty db");
    }

    #[test]
    fn inverted_index() {
        let n = toy();
        let x = n.item_space().get("x").unwrap();
        let vx = n.vertices_with_item(x);
        assert_eq!(vx.len(), 2);
        assert_eq!(vx[0].0, 0);
        assert_eq!(vx[1], (1, 1.0));
        let z = n.item_space().get("z").unwrap();
        assert_eq!(n.vertices_with_item(z), &[(2, 1.0)]);
    }

    #[test]
    fn candidate_vertices_intersects_lists() {
        let n = toy();
        let x = n.item_space().get("x").unwrap();
        let y = n.item_space().get("y").unwrap();
        let p = Pattern::new(vec![x, y]);
        assert_eq!(n.candidate_vertices(&p), vec![0]);
        // x alone: vertices 0 and 1.
        assert_eq!(n.candidate_vertices(&Pattern::singleton(x)), vec![0, 1]);
    }

    #[test]
    fn candidate_vertices_empty_pattern_is_everyone() {
        let n = toy();
        assert_eq!(n.candidate_vertices(&Pattern::empty()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn candidate_vertices_unknown_item_is_empty() {
        let n = toy();
        let p = Pattern::singleton(Item(2)).with_item(Item(0));
        // {x, z}: no vertex has both.
        assert!(n.candidate_vertices(&p).is_empty());
    }

    #[test]
    fn subnetwork_shares_databases_and_remaps() {
        let n = toy();
        let sub = n.induced_subnetwork(&[(0, 1), (0, 2)]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        // Old vertex 0 becomes new vertex 0 (sorted order of {0,1,2}).
        let x = sub.item_space().get("x").unwrap();
        assert_eq!(sub.frequency(0, &Pattern::singleton(x)), 1.0);
        // Databases are shared, not copied.
        assert!(Arc::ptr_eq(&n.databases[0], &sub.databases[0]));
    }

    #[test]
    fn stats_table2() {
        let n = toy();
        let s = n.stats();
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.transactions, 4);
        assert_eq!(s.items_total, 2 + 1 + 1 + 2);
        assert_eq!(s.items_unique, 3);
    }

    #[test]
    fn vertices_without_transactions_get_empty_dbs() {
        let mut b = DatabaseNetworkBuilder::new();
        b.add_edge(0, 5);
        let n = b.build().unwrap();
        assert_eq!(n.num_vertices(), 6);
        assert_eq!(n.database(3).num_transactions(), 0);
    }

    #[test]
    fn unknown_item_rejected() {
        let mut b = DatabaseNetworkBuilder::new();
        // Item(7) was never interned.
        b.add_transaction(0, &[Item(7)]);
        b.ensure_vertex(1);
        assert_eq!(b.build().unwrap_err(), BuildError::UnknownItem(Item(7)));
    }

    #[test]
    fn builder_facade_docs_shape() {
        // The README / lib.rs doctest scenario: 3-clique all buying the pair.
        let mut b = DatabaseNetworkBuilder::new();
        let beer = b.intern_item("beer");
        let diapers = b.intern_item("diapers");
        for v in 0..3u32 {
            for _ in 0..10 {
                b.add_transaction(v, &[beer, diapers]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        let n = b.build().unwrap();
        let p = Pattern::new(vec![beer, diapers]);
        for v in 0..3 {
            assert_eq!(n.frequency(v, &p), 1.0);
        }
    }
}
