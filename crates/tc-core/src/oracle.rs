//! Brute-force reference implementations used as test oracles.
//!
//! Everything here recomputes from definitions (quadratic or worse) with no
//! shared code with the optimised paths — deliberately, so agreement is
//! meaningful evidence of correctness.

use crate::network::DatabaseNetwork;
use crate::theme::ThemeNetwork;
use tc_graph::{EdgeKey, VertexId};
use tc_txdb::Pattern;
use tc_util::{float, FxHashMap};

/// Edge cohesions (Definition 3.1) of every edge in `edges`, computed from
/// scratch within the subgraph spanned by `edges` alone.
pub fn cohesions_of_edge_set(
    network: &DatabaseNetwork,
    pattern: &Pattern,
    edges: &[EdgeKey],
) -> FxHashMap<EdgeKey, f64> {
    let mut freq: FxHashMap<VertexId, f64> = FxHashMap::default();
    let mut adj: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
        for w in [u, v] {
            freq.entry(w)
                .or_insert_with(|| network.frequency(w, pattern));
        }
    }
    for list in adj.values_mut() {
        list.sort_unstable();
    }
    let mut out = FxHashMap::default();
    for &(u, v) in edges {
        let (fu, fv) = (freq[&u], freq[&v]);
        let mut eco = 0.0;
        let (a, b) = (&adj[&u], &adj[&v]);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    eco += fu.min(fv).min(freq[&a[i]]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.insert((u, v), eco);
    }
    out
}

/// Fixpoint peel of an explicit edge set: repeatedly recompute every
/// cohesion from scratch and drop all edges `≤ α` until stable. Returns the
/// surviving edges, sorted.
pub fn peel_edge_set(
    network: &DatabaseNetwork,
    pattern: &Pattern,
    edges: &[EdgeKey],
    alpha: f64,
) -> Vec<EdgeKey> {
    let mut current: Vec<EdgeKey> = edges.to_vec();
    current.sort_unstable();
    current.dedup();
    loop {
        let cohesions = cohesions_of_edge_set(network, pattern, &current);
        let survivors: Vec<EdgeKey> = current
            .iter()
            .filter(|e| float::gt_eps(cohesions[*e], alpha))
            .copied()
            .collect();
        if survivors.len() == current.len() {
            return survivors;
        }
        current = survivors;
    }
}

/// Brute-force maximal pattern truss: fixpoint peel of the full theme
/// network `G_p` at `α` (Definition 3.4 computed literally).
pub fn brute_force_truss(network: &DatabaseNetwork, pattern: &Pattern, alpha: f64) -> Vec<EdgeKey> {
    let theme = ThemeNetwork::induce(network, pattern);
    let edges: Vec<EdgeKey> = theme
        .graph()
        .edges()
        .map(|e| theme.global_edge(e))
        .collect();
    peel_edge_set(network, pattern, &edges, alpha)
}

/// Every pattern with positive frequency on at least one vertex, up to
/// `max_len` items — the exhaustive theme candidate set (2^|S| bounded by
/// what actually occurs). Exponential; test-sized inputs only.
pub fn all_occurring_patterns(network: &DatabaseNetwork, max_len: usize) -> Vec<Pattern> {
    let mut seen: std::collections::BTreeSet<Pattern> = std::collections::BTreeSet::new();
    for v in 0..network.num_vertices() as VertexId {
        tc_txdb::eclat::for_each_frequent_pattern(network.database(v), 0.0, max_len, |p, _| {
            seen.insert(p.clone());
        });
    }
    seen.into_iter().collect()
}

/// Exhaustive miner: runs the brute-force truss computation for **every**
/// occurring pattern. The ground truth against which TCS/TCFA/TCFI are
/// validated.
pub fn exhaustive_mine(
    network: &DatabaseNetwork,
    alpha: f64,
    max_len: usize,
) -> Vec<(Pattern, Vec<EdgeKey>)> {
    all_occurring_patterns(network, max_len)
        .into_iter()
        .filter_map(|p| {
            let edges = brute_force_truss(network, &p, alpha);
            (!edges.is_empty()).then_some((p, edges))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatabaseNetworkBuilder;

    fn triangle_net() -> (DatabaseNetwork, Pattern) {
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        for v in 0..3u32 {
            b.add_transaction(v, &[p]);
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        (net, pat)
    }

    #[test]
    fn triangle_cohesions_are_one() {
        let (net, pat) = triangle_net();
        let eco = cohesions_of_edge_set(&net, &pat, &[(0, 1), (1, 2), (0, 2)]);
        for &v in eco.values() {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn peel_fixpoint_keeps_triangle_below_one() {
        let (net, pat) = triangle_net();
        let edges = [(0, 1), (1, 2), (0, 2)];
        assert_eq!(peel_edge_set(&net, &pat, &edges, 0.5).len(), 3);
        assert!(peel_edge_set(&net, &pat, &edges, 1.0).is_empty());
    }

    #[test]
    fn brute_force_truss_on_triangle() {
        let (net, pat) = triangle_net();
        assert_eq!(brute_force_truss(&net, &pat, 0.5).len(), 3);
        assert!(brute_force_truss(&net, &pat, 1.0).is_empty());
    }

    #[test]
    fn all_occurring_patterns_enumerates() {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        b.add_transaction(0, &[x, y]);
        b.add_transaction(1, &[x]);
        b.add_edge(0, 1);
        let net = b.build().unwrap();
        let pats = all_occurring_patterns(&net, usize::MAX);
        // {x}, {y}, {x,y}
        assert_eq!(pats.len(), 3);
        let caps = all_occurring_patterns(&net, 1);
        assert_eq!(caps.len(), 2);
    }

    #[test]
    fn exhaustive_mine_triangle() {
        let (net, pat) = triangle_net();
        let results = exhaustive_mine(&net, 0.5, usize::MAX);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, pat);
        assert_eq!(results[0].1.len(), 3);
        assert!(exhaustive_mine(&net, 1.0, usize::MAX).is_empty());
    }
}
