//! The common interface of the three theme-community finders.

use crate::network::DatabaseNetwork;
use crate::result::MiningResult;

/// A theme-community finding algorithm: given a database network and a
/// minimum cohesion threshold `α`, produce every non-empty maximal pattern
/// truss (Definition 3.7).
pub trait Miner {
    /// Short display name ("TCS", "TCFA", "TCFI").
    fn name(&self) -> &'static str;

    /// Mines all maximal pattern trusses of `network` at threshold `alpha`.
    fn mine(&self, network: &DatabaseNetwork, alpha: f64) -> MiningResult;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TcfaMiner, TcfiMiner, TcsMiner};

    #[test]
    fn names() {
        assert_eq!(TcsMiner::default().name(), "TCS");
        assert_eq!(TcfaMiner::default().name(), "TCFA");
        assert_eq!(TcfiMiner::default().name(), "TCFI");
    }

    #[test]
    fn trait_objects_usable() {
        let miners: Vec<Box<dyn Miner>> = vec![
            Box::new(TcsMiner::default()),
            Box::new(TcfaMiner::default()),
            Box::new(TcfiMiner::default()),
        ];
        let mut b = crate::DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        for v in 0..3u32 {
            b.add_transaction(v, &[x]);
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        let net = b.build().unwrap();
        for m in &miners {
            let r = m.mine(&net, 0.5);
            assert_eq!(r.np(), 1, "{} finds the single truss", m.name());
        }
    }
}
