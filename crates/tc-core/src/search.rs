//! Online theme-community search.
//!
//! The k-truss literature the paper builds on (§2.1, Huang et al. 2014)
//! studies *community search*: given a query vertex, return the communities
//! containing it. This module lifts that operation to theme communities:
//! given a vertex `v`, a pattern `p` and a threshold `α`, return the theme
//! community of `p` containing `v`, if any.
//!
//! The index-accelerated variant (prune whole TC-Tree subtrees once `v`
//! drops out of a truss — sound by Theorem 5.1) lives in `tc-index`.

use crate::community::{extract_communities, ThemeCommunity};
use crate::mptd::maximal_pattern_truss;
use crate::network::DatabaseNetwork;
use crate::theme::ThemeNetwork;
use tc_graph::VertexId;
use tc_txdb::Pattern;

/// The theme community of `pattern` at `alpha` containing `vertex`, if any.
///
/// Computes the maximal pattern truss of `G_p`, splits it into connected
/// components, and returns the component containing `vertex`.
pub fn community_of_vertex(
    network: &DatabaseNetwork,
    vertex: VertexId,
    pattern: &Pattern,
    alpha: f64,
) -> Option<ThemeCommunity> {
    let theme = ThemeNetwork::induce(network, pattern);
    let truss = maximal_pattern_truss(&theme, alpha);
    if !truss.contains_vertex(vertex) {
        return None;
    }
    extract_communities(&truss)
        .into_iter()
        .find(|c| c.vertices.binary_search(&vertex).is_ok())
}

/// All single-item theme communities containing `vertex` at `alpha` — a
/// vertex's *theme profile*. Returns `(pattern, community)` pairs sorted by
/// pattern.
pub fn theme_profile(
    network: &DatabaseNetwork,
    vertex: VertexId,
    alpha: f64,
) -> Vec<(Pattern, ThemeCommunity)> {
    let mut out = Vec::new();
    if (vertex as usize) >= network.num_vertices() {
        return out;
    }
    // Only items present in the vertex's own database can qualify: if
    // f_v(p) = 0 then v is not in G_p at all.
    let mut items: Vec<_> = network.database(vertex).items().collect();
    items.sort_unstable();
    for item in items {
        let pattern = Pattern::singleton(item);
        if let Some(c) = community_of_vertex(network, vertex, &pattern, alpha) {
            out.push((pattern, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatabaseNetworkBuilder;

    /// Two triangles sharing vertex 2: {0,1,2} themed "x", {2,3,4} themed
    /// "y"; vertex 2 carries both items.
    fn net() -> DatabaseNetwork {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        for v in [0u32, 1] {
            for _ in 0..4 {
                b.add_transaction(v, &[x]);
            }
        }
        for v in [3u32, 4] {
            for _ in 0..4 {
                b.add_transaction(v, &[y]);
            }
        }
        for _ in 0..4 {
            b.add_transaction(2, &[x, y]);
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(2, 3).add_edge(3, 4).add_edge(2, 4);
        b.build().unwrap()
    }

    #[test]
    fn finds_community_of_query_vertex() {
        let n = net();
        let x = n.item_space().get("x").unwrap();
        let c = community_of_vertex(&n, 0, &Pattern::singleton(x), 0.5).unwrap();
        assert_eq!(c.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn absent_vertex_returns_none() {
        let n = net();
        let x = n.item_space().get("x").unwrap();
        // Vertex 4 has no "x" at all.
        assert!(community_of_vertex(&n, 4, &Pattern::singleton(x), 0.0).is_none());
        // Vertex beyond range.
        assert!(community_of_vertex(&n, 99, &Pattern::singleton(x), 0.0).is_none());
    }

    #[test]
    fn high_alpha_returns_none() {
        let n = net();
        let x = n.item_space().get("x").unwrap();
        assert!(community_of_vertex(&n, 0, &Pattern::singleton(x), 5.0).is_none());
    }

    #[test]
    fn returns_only_vs_component() {
        // Two disjoint "x" triangles; the query vertex's component only.
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        for v in 0..6u32 {
            for _ in 0..3 {
                b.add_transaction(v, &[x]);
            }
        }
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(3, 5);
        let n = b.build().unwrap();
        let c = community_of_vertex(&n, 4, &Pattern::singleton(x), 0.5).unwrap();
        assert_eq!(c.vertices, vec![3, 4, 5]);
    }

    #[test]
    fn theme_profile_of_bridge_vertex() {
        let n = net();
        let profile = theme_profile(&n, 2, 0.5);
        assert_eq!(profile.len(), 2, "vertex 2 sits in both themes");
        let themes: Vec<String> = profile.iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(themes, vec!["{i0}", "{i1}"]);
        // Its communities differ.
        assert_eq!(profile[0].1.vertices, vec![0, 1, 2]);
        assert_eq!(profile[1].1.vertices, vec![2, 3, 4]);
    }

    #[test]
    fn theme_profile_of_leaf_vertex() {
        let n = net();
        let profile = theme_profile(&n, 0, 0.5);
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].1.vertices, vec![0, 1, 2]);
    }

    #[test]
    fn theme_profile_out_of_range() {
        let n = net();
        assert!(theme_profile(&n, 1000, 0.0).is_empty());
    }
}
