//! Theme communities — Definition 3.5.
//!
//! A theme community is a maximal connected subgraph of a maximal pattern
//! truss. Extraction is a connected-components pass over the truss edges.

use crate::truss::PatternTruss;
use tc_graph::{EdgeKey, VertexId};
use tc_txdb::Pattern;
use tc_util::HeapSize;

/// One theme community: a connected subgraph whose vertices all exhibit the
/// theme `pattern` with positive frequency and whose edges all exceeded the
/// cohesion threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThemeCommunity {
    /// The theme.
    pub pattern: Pattern,
    /// Member vertices, sorted.
    pub vertices: Vec<VertexId>,
    /// Member edges, canonical and sorted.
    pub edges: Vec<EdgeKey>,
}

impl ThemeCommunity {
    /// Number of member vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of member edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Vertex-set overlap with another community (shared vertex count).
    /// Communities of different themes may overlap arbitrarily (§7.4).
    pub fn vertex_overlap(&self, other: &ThemeCommunity) -> usize {
        let (a, b) = (&self.vertices, &other.vertices);
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

impl HeapSize for ThemeCommunity {
    fn heap_size(&self) -> usize {
        self.pattern.heap_size()
            + self.vertices.capacity() * std::mem::size_of::<VertexId>()
            + self.edges.capacity() * std::mem::size_of::<EdgeKey>()
    }
}

/// Splits a maximal pattern truss into its theme communities (maximal
/// connected subgraphs). Communities are ordered by smallest member vertex.
pub fn extract_communities(truss: &PatternTruss) -> Vec<ThemeCommunity> {
    if truss.is_empty() {
        return Vec::new();
    }
    let verts = &truss.vertices;
    let mut uf = tc_graph::UnionFind::new(verts.len());
    let local = |v: VertexId| verts.binary_search(&v).expect("endpoint in vertex list") as u32;
    for &(u, v) in &truss.edges {
        uf.union(local(u), local(v));
    }
    // Group edges and vertices by component root.
    let mut comm_of_root: tc_util::FxHashMap<u32, usize> = tc_util::FxHashMap::default();
    let mut communities: Vec<ThemeCommunity> = Vec::new();
    for (i, &v) in verts.iter().enumerate() {
        let root = uf.find(i as u32);
        let next = communities.len();
        let idx = *comm_of_root.entry(root).or_insert(next);
        if idx == communities.len() {
            communities.push(ThemeCommunity {
                pattern: truss.pattern.clone(),
                vertices: Vec::new(),
                edges: Vec::new(),
            });
        }
        communities[idx].vertices.push(v);
    }
    for &(u, v) in &truss.edges {
        let root = uf.find(local(u));
        let idx = comm_of_root[&root];
        communities[idx].edges.push((u, v));
    }
    communities
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_txdb::Item;

    fn pat(ids: &[u32]) -> Pattern {
        Pattern::new(ids.iter().map(|&i| Item(i)).collect())
    }

    #[test]
    fn single_component() {
        let t = PatternTruss::from_edges(pat(&[0]), 0.0, vec![(0, 1), (1, 2), (0, 2)]);
        let cs = extract_communities(&t);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].vertices, vec![0, 1, 2]);
        assert_eq!(cs[0].num_edges(), 3);
        assert_eq!(cs[0].pattern, pat(&[0]));
    }

    #[test]
    fn two_components_like_figure1b() {
        // Paper Example 3.6: {v1..v5} and {v7,v8,v9} are two communities of
        // the same maximal pattern truss.
        let t = PatternTruss::from_edges(
            pat(&[0]),
            0.1,
            vec![
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (6, 7),
                (7, 8),
                (6, 8),
            ],
        );
        let cs = extract_communities(&t);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(cs[1].vertices, vec![6, 7, 8]);
        assert_eq!(cs[0].num_edges(), 6);
        assert_eq!(cs[1].num_edges(), 3);
    }

    #[test]
    fn empty_truss_no_communities() {
        let t = PatternTruss::empty(pat(&[0]), 0.0);
        assert!(extract_communities(&t).is_empty());
    }

    #[test]
    fn edges_partitioned_exactly() {
        let t =
            PatternTruss::from_edges(pat(&[1]), 0.0, vec![(0, 1), (1, 2), (5, 6), (6, 7), (5, 7)]);
        let cs = extract_communities(&t);
        let total_edges: usize = cs.iter().map(ThemeCommunity::num_edges).sum();
        let total_verts: usize = cs.iter().map(ThemeCommunity::num_vertices).sum();
        assert_eq!(total_edges, t.num_edges());
        assert_eq!(total_verts, t.num_vertices());
    }

    #[test]
    fn overlap_counts_shared_vertices() {
        let a = ThemeCommunity {
            pattern: pat(&[0]),
            vertices: vec![1, 2, 3, 5],
            edges: vec![],
        };
        let b = ThemeCommunity {
            pattern: pat(&[1]),
            vertices: vec![2, 3, 4],
            edges: vec![],
        };
        assert_eq!(a.vertex_overlap(&b), 2);
        assert_eq!(b.vertex_overlap(&a), 2);
        assert_eq!(a.vertex_overlap(&a), 4);
    }
}
