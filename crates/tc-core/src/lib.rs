//! The paper's primary contribution: finding theme communities from
//! database networks.
//!
//! * [`network`] — the database network `G = (V, E, D, S)` (§3.1);
//! * [`theme`] — theme networks `G_p` induced by patterns;
//! * [`peel`] / [`mptd`] — the Maximal Pattern Truss Detector
//!   (Algorithm 1) and its shared edge-peeling engine;
//! * [`truss`] — maximal pattern trusses (Definitions 3.3-3.4);
//! * [`community`] — theme communities (Definition 3.5) as connected
//!   components of trusses;
//! * [`tcs`] — the Theme Community Scanner baseline (§4.2);
//! * [`tcfa`] — Theme Community Finder Apriori (Algorithm 3);
//! * [`tcfi`] — Theme Community Finder Intersection (§5.3);
//! * [`decompose`] — truss decomposition `L_p` (§6.1), the payload of the
//!   TC-Tree index in `tc-index`;
//! * [`search`] — online theme-community search by query vertex (the
//!   §2.1 community-search operation, lifted to themes);
//! * [`edge`] — the §8 future-work extension: edge database networks,
//!   edge-pattern trusses and their TCFI;
//! * [`oracle`] — brute-force reference implementations for testing.

pub mod community;
pub mod decompose;
pub mod edge;
pub mod miner;
pub mod mptd;
pub mod network;
pub mod oracle;
pub mod peel;
pub mod result;
pub mod search;
pub mod tcfa;
pub mod tcfi;
pub mod tcs;
pub mod theme;
pub mod truss;

pub use community::{extract_communities, ThemeCommunity};
pub use decompose::{TrussDecomposition, TrussLevel};
pub use edge::{EdgeDatabaseNetwork, EdgeDatabaseNetworkBuilder, EdgeTcfiMiner};
pub use miner::Miner;
pub use mptd::{maximal_pattern_truss, maximal_pattern_truss_with_cohesions};
pub use network::{BuildError, DatabaseNetwork, DatabaseNetworkBuilder, NetworkStats};
pub use result::{MinerStats, MiningResult};
pub use search::{community_of_vertex, theme_profile};
pub use tcfa::TcfaMiner;
pub use tcfi::{LevelBarrierTcfiMiner, ParallelTcfiMiner, TcfiMiner};
pub use tcs::TcsMiner;
pub use theme::ThemeNetwork;
pub use truss::PatternTruss;
