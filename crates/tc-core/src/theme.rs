//! Theme networks `G_p` (paper §3.1).
//!
//! Given a pattern `p`, the theme network is the subgraph of `G` induced by
//! the vertices with `f_i(p) > 0`, each annotated with that frequency. The
//! miners materialise theme networks as compact local structures (dense
//! `u32` ids, sorted adjacency, parallel frequency array) ready for the
//! peeling engine.

use crate::network::DatabaseNetwork;
use tc_graph::{EdgeKey, GraphBuilder, UGraph, VertexId};
use tc_txdb::Pattern;
use tc_util::FxHashMap;

/// A materialised theme network with local vertex ids.
#[derive(Debug, Clone)]
pub struct ThemeNetwork {
    pattern: Pattern,
    /// Local-id graph over `0..vertices.len()`.
    graph: UGraph,
    /// Local id → global vertex id (sorted ascending).
    vertices: Vec<VertexId>,
    /// Local id → `f_i(p)` (strictly positive).
    freqs: Vec<f64>,
}

impl ThemeNetwork {
    /// Induces `G_p` from the full database network.
    ///
    /// Candidate vertices come from the inverted item index; each candidate's
    /// exact frequency is computed from its vertex database and zero-frequency
    /// candidates (items present but never co-occurring) are dropped.
    pub fn induce(network: &DatabaseNetwork, pattern: &Pattern) -> ThemeNetwork {
        let candidates = network.candidate_vertices(pattern);
        let mut vertices = Vec::with_capacity(candidates.len());
        let mut freqs = Vec::with_capacity(candidates.len());
        if pattern.len() == 1 {
            // Fast path: frequencies are already in the index.
            for &(v, f) in network.vertices_with_item(pattern.items()[0]) {
                vertices.push(v);
                freqs.push(f);
            }
        } else {
            for v in candidates {
                let f = network.frequency(v, pattern);
                if f > 0.0 {
                    vertices.push(v);
                    freqs.push(f);
                }
            }
        }
        let edges = induce_edges(network, &vertices);
        Self::from_parts(pattern.clone(), vertices, freqs, &edges)
    }

    /// Induces `G_p` by scanning **every** vertex database — the literal
    /// Algorithm 3 line 6, *"Induce `G_pk` from `G`"*.
    ///
    /// This is the induction cost model of the paper's TCFA and TCS
    /// baselines: `Ω(|V|)` pattern-frequency probes per candidate, which is
    /// precisely the work TCFI's intersection trick (§5.3) avoids.
    /// [`ThemeNetwork::induce`] is an index-accelerated variant that would
    /// blur that comparison; the baselines must not use it.
    pub fn induce_scan(network: &DatabaseNetwork, pattern: &Pattern) -> ThemeNetwork {
        let mut vertices = Vec::new();
        let mut freqs = Vec::new();
        for v in 0..network.num_vertices() as VertexId {
            let f = network.frequency(v, pattern);
            if f > 0.0 {
                vertices.push(v);
                freqs.push(f);
            }
        }
        let edges = induce_edges(network, &vertices);
        Self::from_parts(pattern.clone(), vertices, freqs, &edges)
    }

    /// Induces `G_p` restricted to a subgraph given as an explicit edge set
    /// over **global** vertex ids — the TCFI path (§5.3), where the edge set
    /// is the intersection of two parents' maximal pattern trusses.
    pub fn induce_from_edges(
        network: &DatabaseNetwork,
        pattern: &Pattern,
        edges: &[EdgeKey],
    ) -> ThemeNetwork {
        let span = tc_graph::ktruss::edge_set_vertices(edges);
        let mut vertices = Vec::with_capacity(span.len());
        let mut freqs = Vec::with_capacity(span.len());
        for v in span {
            let f = network.frequency(v, pattern);
            if f > 0.0 {
                vertices.push(v);
                freqs.push(f);
            }
        }
        // Keep only edges whose both endpoints kept positive frequency.
        let kept: Vec<EdgeKey> = edges
            .iter()
            .filter(|&&(u, v)| {
                vertices.binary_search(&u).is_ok() && vertices.binary_search(&v).is_ok()
            })
            .copied()
            .collect();
        Self::from_parts(pattern.clone(), vertices, freqs, &kept)
    }

    fn from_parts(
        pattern: Pattern,
        vertices: Vec<VertexId>,
        freqs: Vec<f64>,
        global_edges: &[EdgeKey],
    ) -> ThemeNetwork {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]), "sorted vertices");
        let mut gb = GraphBuilder::with_capacity(global_edges.len());
        for &(u, v) in global_edges {
            let lu = vertices
                .binary_search(&u)
                .expect("edge endpoint in vertex set") as u32;
            let lv = vertices
                .binary_search(&v)
                .expect("edge endpoint in vertex set") as u32;
            gb.add_edge(lu, lv);
        }
        if let Some(last) = vertices.len().checked_sub(1) {
            gb.ensure_vertex(last as u32);
        }
        ThemeNetwork {
            pattern,
            graph: gb.build(),
            vertices,
            freqs,
        }
    }

    /// The inducing pattern `p`.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The local-id graph.
    pub fn graph(&self) -> &UGraph {
        &self.graph
    }

    /// Number of vertices with `f_i(p) > 0`.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges of `G_p`.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// `true` when the theme network has no edges (no truss can exist).
    pub fn is_trivial(&self) -> bool {
        self.graph.num_edges() == 0
    }

    /// Global id of local vertex `local`.
    #[inline]
    pub fn global_id(&self, local: u32) -> VertexId {
        self.vertices[local as usize]
    }

    /// All global vertex ids (sorted).
    pub fn global_vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// `f_i(p)` of local vertex `local`.
    #[inline]
    pub fn frequency(&self, local: u32) -> f64 {
        self.freqs[local as usize]
    }

    /// The frequency array, indexed by local id.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// Translates a local edge to global ids (canonical order).
    #[inline]
    pub fn global_edge(&self, e: (u32, u32)) -> EdgeKey {
        tc_graph::edge_key(self.global_id(e.0), self.global_id(e.1))
    }

    /// Frequencies keyed by global vertex id (for reporting).
    pub fn global_frequency_map(&self) -> FxHashMap<VertexId, f64> {
        self.vertices
            .iter()
            .zip(&self.freqs)
            .map(|(&v, &f)| (v, f))
            .collect()
    }
}

/// Edges of the full network whose endpoints both lie in `vertices`
/// (sorted global ids).
fn induce_edges(network: &DatabaseNetwork, vertices: &[VertexId]) -> Vec<EdgeKey> {
    let g = network.graph();
    let mut out = Vec::new();
    for &u in vertices {
        for &v in g.neighbors(u) {
            if u < v && vertices.binary_search(&v).is_ok() {
                out.push((u, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::DatabaseNetworkBuilder;

    /// Figure 1-style toy: v0..v4 pentagon-ish cluster carrying "p", v5 with
    /// zero frequency, v6..v8 a separate triangle carrying "p".
    fn toy() -> (DatabaseNetwork, Pattern) {
        let mut b = DatabaseNetworkBuilder::new();
        let p = b.intern_item("p");
        let other = b.intern_item("other");
        for v in [0u32, 1, 2, 3, 4] {
            // f = 0.5
            b.add_transaction(v, &[p]);
            b.add_transaction(v, &[other]);
        }
        b.add_transaction(5, &[other]); // f_5(p) = 0
        for v in [6u32, 7, 8] {
            b.add_transaction(v, &[p]); // f = 1.0
        }
        // Cluster edges.
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)] {
            b.add_edge(u, v);
        }
        // Bridge through the zero-frequency vertex 5.
        b.add_edge(4, 5);
        b.add_edge(5, 6);
        // Second triangle.
        b.add_edge(6, 7);
        b.add_edge(7, 8);
        b.add_edge(8, 6);
        let net = b.build().unwrap();
        let pat = Pattern::singleton(net.item_space().get("p").unwrap());
        (net, pat)
    }

    #[test]
    fn induce_drops_zero_frequency_vertices() {
        let (net, pat) = toy();
        let t = ThemeNetwork::induce(&net, &pat);
        assert_eq!(t.global_vertices(), &[0, 1, 2, 3, 4, 6, 7, 8]);
        assert_eq!(t.num_vertices(), 8);
        // Edges through v5 vanish: (4,5), (5,6).
        assert_eq!(t.num_edges(), 9);
    }

    #[test]
    fn frequencies_carried() {
        let (net, pat) = toy();
        let t = ThemeNetwork::induce(&net, &pat);
        for local in 0..t.num_vertices() as u32 {
            let expected = if t.global_id(local) <= 4 { 0.5 } else { 1.0 };
            assert!((t.frequency(local) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn local_graph_mirrors_global_topology() {
        let (net, pat) = toy();
        let t = ThemeNetwork::induce(&net, &pat);
        for (lu, lv) in t.graph().edges() {
            let (gu, gv) = t.global_edge((lu, lv));
            assert!(net.graph().has_edge(gu, gv));
        }
    }

    #[test]
    fn induce_multi_item_pattern_requires_cooccurrence() {
        let mut b = DatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        // v0 has x and y co-occurring; v1 has both items but never together.
        b.add_transaction(0, &[x, y]);
        b.add_transaction(1, &[x]);
        b.add_transaction(1, &[y]);
        b.add_edge(0, 1);
        let net = b.build().unwrap();
        let pat = Pattern::new(vec![x, y]);
        let t = ThemeNetwork::induce(&net, &pat);
        assert_eq!(t.global_vertices(), &[0], "v1 has f=0 for {{x,y}}");
        assert!(t.is_trivial());
    }

    #[test]
    fn induce_from_edges_restricts() {
        let (net, pat) = toy();
        // Restrict to the second triangle plus a dangling edge to v5
        // (v5 has zero frequency and must drop out).
        let edges = [(6u32, 7u32), (7, 8), (6, 8), (5, 6)];
        let t = ThemeNetwork::induce_from_edges(&net, &pat, &edges);
        assert_eq!(t.global_vertices(), &[6, 7, 8]);
        assert_eq!(t.num_edges(), 3);
    }

    #[test]
    fn induce_from_empty_edges() {
        let (net, pat) = toy();
        let t = ThemeNetwork::induce_from_edges(&net, &pat, &[]);
        assert_eq!(t.num_vertices(), 0);
        assert!(t.is_trivial());
    }

    #[test]
    fn unknown_pattern_gives_empty_network() {
        let (net, _) = toy();
        let ghost = Pattern::singleton(tc_txdb::Item(999));
        let t = ThemeNetwork::induce(&net, &ghost);
        assert_eq!(t.num_vertices(), 0);
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn global_frequency_map_roundtrip() {
        let (net, pat) = toy();
        let t = ThemeNetwork::induce(&net, &pat);
        let m = t.global_frequency_map();
        assert_eq!(m.len(), 8);
        assert!((m[&0] - 0.5).abs() < 1e-12);
        assert!((m[&8] - 1.0).abs() < 1e-12);
    }
}
