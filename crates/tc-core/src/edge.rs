//! Edge database networks — the paper's §8 future work, implemented.
//!
//! *"As future works, we will extend TCFI and TC-Tree to find theme
//! communities from edge database network, where each edge is associated
//! with a transaction database that describes complex relationships
//! between vertices."*
//!
//! The lift is natural. In an **edge database network** every edge `e`
//! carries a transaction database, giving pattern frequencies `f_e(p)`.
//! The theme network `G_p` is the subgraph of edges with `f_e(p) > 0`;
//! the cohesion of an edge is
//!
//! ```text
//! eco_ij(C) = Σ_{△ijk ⊆ C} min(f_ij(p), f_ik(p), f_jk(p))
//! ```
//!
//! — the sum over triangles **whose three edges all survive in `C`** of the
//! minimum pattern frequency among those three edges. Pattern trusses,
//! maximality, anti-monotonicity (both graph and pattern) and the
//! intersection property all carry over, because `f_e` is anti-monotone in
//! `p` exactly like vertex frequencies; the proofs of Theorems 5.1/6.1
//! rewrite verbatim with edge frequencies in place of vertex frequencies.
//! The miner below is the TCFI of this setting.

use crate::truss::PatternTruss;
use std::collections::VecDeque;
use std::sync::Arc;
use tc_graph::{EdgeKey, VertexId};
use tc_txdb::database::TransactionDbBuilder;
use tc_txdb::{Item, ItemSpace, Pattern, TransactionDb};
use tc_util::{float, FxHashMap, Stopwatch};

/// Errors raised while assembling an [`EdgeDatabaseNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeBuildError {
    /// A transaction used an [`Item`] never interned in the item space.
    UnknownItem(Item),
    /// A transaction referenced an edge never added.
    UnknownEdge(EdgeKey),
}

impl std::fmt::Display for EdgeBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeBuildError::UnknownItem(i) => write!(f, "item {i} was not interned"),
            EdgeBuildError::UnknownEdge(e) => write!(f, "edge {e:?} was never added"),
        }
    }
}

impl std::error::Error for EdgeBuildError {}

/// Builder for [`EdgeDatabaseNetwork`].
#[derive(Debug, Default)]
pub struct EdgeDatabaseNetworkBuilder {
    items: ItemSpace,
    edges: Vec<EdgeKey>,
    databases: FxHashMap<EdgeKey, TransactionDbBuilder>,
}

impl EdgeDatabaseNetworkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an item name.
    pub fn intern_item(&mut self, name: &str) -> Item {
        self.items.intern(name)
    }

    /// Adds the undirected edge `{u, v}` (idempotent).
    ///
    /// # Panics
    /// Panics on self loops.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert_ne!(u, v, "self-loop rejected");
        let key = tc_graph::edge_key(u, v);
        if !self.databases.contains_key(&key) {
            self.edges.push(key);
            self.databases.insert(key, TransactionDbBuilder::new());
        }
        self
    }

    /// Appends a transaction to the database of edge `{u, v}`, adding the
    /// edge if needed.
    pub fn add_transaction(&mut self, u: VertexId, v: VertexId, items: &[Item]) -> &mut Self {
        self.add_edge(u, v);
        let key = tc_graph::edge_key(u, v);
        self.databases
            .get_mut(&key)
            .expect("edge just ensured")
            .add_transaction(items.iter().copied());
        self
    }

    /// Freezes into an immutable network.
    pub fn build(mut self) -> Result<EdgeDatabaseNetwork, EdgeBuildError> {
        self.edges.sort_unstable();
        self.edges.dedup();
        let num_items = self.items.len() as u32;
        let mut databases: FxHashMap<EdgeKey, Arc<TransactionDb>> =
            tc_util::hash::fx_map_with_capacity(self.edges.len());
        for (key, builder) in self.databases.drain() {
            let db = builder.build();
            for item in db.items() {
                if item.0 >= num_items {
                    return Err(EdgeBuildError::UnknownItem(item));
                }
            }
            databases.insert(key, Arc::new(db));
        }
        // Inverted index: item -> edges with positive frequency.
        let mut item_index: FxHashMap<Item, Vec<EdgeKey>> = FxHashMap::default();
        for &key in &self.edges {
            let db = &databases[&key];
            for item in db.items() {
                if db.item_frequency(item) > 0.0 {
                    item_index.entry(item).or_default().push(key);
                }
            }
        }
        for list in item_index.values_mut() {
            list.sort_unstable();
        }
        Ok(EdgeDatabaseNetwork {
            edges: self.edges,
            databases,
            items: self.items,
            item_index,
        })
    }
}

/// A network whose **edges** carry transaction databases (§8).
#[derive(Debug, Clone)]
pub struct EdgeDatabaseNetwork {
    /// All edges, canonical and sorted.
    edges: Vec<EdgeKey>,
    databases: FxHashMap<EdgeKey, Arc<TransactionDb>>,
    items: ItemSpace,
    item_index: FxHashMap<Item, Vec<EdgeKey>>,
}

impl EdgeDatabaseNetwork {
    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct endpoint vertices.
    pub fn num_vertices(&self) -> usize {
        tc_graph::ktruss::edge_set_vertices(&self.edges).len()
    }

    /// The item space.
    pub fn item_space(&self) -> &ItemSpace {
        &self.items
    }

    /// All edges, sorted.
    pub fn edges(&self) -> &[EdgeKey] {
        &self.edges
    }

    /// The database of edge `{u, v}` if the edge exists.
    pub fn database(&self, u: VertexId, v: VertexId) -> Option<&TransactionDb> {
        self.databases
            .get(&tc_graph::edge_key(u, v))
            .map(Arc::as_ref)
    }

    /// `f_e(p)` — frequency of `pattern` on edge `{u, v}` (0 if absent).
    pub fn frequency(&self, u: VertexId, v: VertexId, pattern: &Pattern) -> f64 {
        self.database(u, v).map_or(0.0, |db| db.frequency(pattern))
    }

    /// Items used on at least one edge, sorted.
    pub fn items_in_use(&self) -> Vec<Item> {
        let mut items: Vec<Item> = self.item_index.keys().copied().collect();
        items.sort_unstable();
        items
    }

    /// Edges where `item` has positive frequency (sorted).
    pub fn edges_with_item(&self, item: Item) -> &[EdgeKey] {
        self.item_index.get(&item).map_or(&[], Vec::as_slice)
    }

    /// The edge theme network of `pattern`: surviving edges and their
    /// frequencies, restricted to `within` when given (the TCFI
    /// intersection path).
    fn theme_edges(&self, pattern: &Pattern, within: Option<&[EdgeKey]>) -> Vec<(EdgeKey, f64)> {
        let candidates: Vec<EdgeKey> = match within {
            Some(w) => w.to_vec(),
            None => {
                // Intersect per-item edge lists, then verify frequency.
                let mut lists: Vec<&[EdgeKey]> = Vec::with_capacity(pattern.len());
                for item in pattern.iter() {
                    let l = self.edges_with_item(item);
                    if l.is_empty() {
                        return Vec::new();
                    }
                    lists.push(l);
                }
                if lists.is_empty() {
                    return Vec::new();
                }
                lists.sort_by_key(|l| l.len());
                let mut acc: Vec<EdgeKey> = lists[0].to_vec();
                for l in &lists[1..] {
                    let mut out = Vec::with_capacity(acc.len().min(l.len()));
                    let (mut i, mut j) = (0, 0);
                    while i < acc.len() && j < l.len() {
                        match acc[i].cmp(&l[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                out.push(acc[i]);
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    acc = out;
                }
                acc
            }
        };
        candidates
            .into_iter()
            .filter_map(|(u, v)| {
                let f = self.frequency(u, v, pattern);
                (f > 0.0).then_some(((u, v), f))
            })
            .collect()
    }

    /// Maximal **edge-pattern truss** at threshold `alpha`: peels edges with
    /// `eco ≤ α`, where cohesion sums `min(f_ij, f_ik, f_jk)` over the
    /// triangles whose three edges all remain.
    pub fn maximal_edge_pattern_truss(
        &self,
        pattern: &Pattern,
        alpha: f64,
        within: Option<&[EdgeKey]>,
    ) -> PatternTruss {
        let themed = self.theme_edges(pattern, within);
        if themed.is_empty() {
            return PatternTruss::empty(pattern.clone(), alpha);
        }
        let mut state = EdgePeelState::new(&themed);
        state.peel(alpha, |_| {});
        PatternTruss::from_edges(pattern.clone(), alpha, state.alive_keys())
    }

    /// Decomposes the maximal edge-pattern truss at `α = 0` into the §6.1
    /// level list `L_p` — the payload that lets a TC-Tree index edge
    /// database networks, completing the paper's §8 program ("extend TCFI
    /// *and TC-Tree*"). Theorem 6.1 and Equation 1 lift verbatim because
    /// the peeling semantics are identical.
    pub fn decompose_edge_truss(
        &self,
        pattern: &Pattern,
        within: Option<&[EdgeKey]>,
    ) -> crate::TrussDecomposition {
        let themed = self.theme_edges(pattern, within);
        let mut levels = Vec::new();
        if !themed.is_empty() {
            let mut state = EdgePeelState::new(&themed);
            // Edge ids are stable; copy the id → key table once so the peel
            // closure needs no access to `state`.
            let keys = state.keys.clone();
            state.peel(0.0, |_| {});
            while state.alive_count > 0 {
                let beta = state
                    .min_alive_cohesion()
                    .expect("alive edges have cohesions");
                let mut removed = Vec::new();
                state.peel(beta, |id| removed.push(keys[id as usize]));
                removed.sort_unstable();
                levels.push(crate::TrussLevel {
                    alpha: beta,
                    edges: removed,
                });
            }
        }
        crate::TrussDecomposition {
            pattern: pattern.clone(),
            levels,
        }
    }
}

/// Resumable peeling state over one edge theme network — the edge-setting
/// analog of `peel::PeelState`, with the same pop-time removal semantics.
struct EdgePeelState {
    /// Edge id → canonical key.
    keys: Vec<EdgeKey>,
    /// Edge id → `f_e(p)`.
    freqs: Vec<f64>,
    /// Vertex → sorted `(neighbor, edge id)`.
    adj: FxHashMap<VertexId, Vec<(VertexId, u32)>>,
    cohesion: Vec<f64>,
    removed: Vec<bool>,
    queued: Vec<bool>,
    alive_count: usize,
}

impl EdgePeelState {
    fn new(themed: &[(EdgeKey, f64)]) -> Self {
        let m = themed.len();
        let mut keys = Vec::with_capacity(m);
        let mut freqs = Vec::with_capacity(m);
        let mut adj: FxHashMap<VertexId, Vec<(VertexId, u32)>> = FxHashMap::default();
        for (i, &((u, v), f)) in themed.iter().enumerate() {
            keys.push((u, v));
            freqs.push(f);
            adj.entry(u).or_default().push((v, i as u32));
            adj.entry(v).or_default().push((u, i as u32));
        }
        for list in adj.values_mut() {
            list.sort_unstable();
        }
        // Initial cohesions: a common neighbor closes a triangle iff both
        // closing edges are themed — guaranteed by `adj`'s construction.
        let mut cohesion = vec![0.0f64; m];
        for (i, &(u, v)) in keys.iter().enumerate() {
            let mut eco = 0.0;
            merge_adj(&adj[&u], &adj[&v], |e_uw, e_vw| {
                eco += freqs[i].min(freqs[e_uw as usize]).min(freqs[e_vw as usize]);
            });
            cohesion[i] = eco;
        }
        EdgePeelState {
            keys,
            freqs,
            adj,
            cohesion,
            removed: vec![false; m],
            queued: vec![false; m],
            alive_count: m,
        }
    }

    fn min_alive_cohesion(&self) -> Option<f64> {
        (0..self.keys.len())
            .filter(|&i| !self.removed[i])
            .map(|i| self.cohesion[i])
            .min_by(f64::total_cmp)
    }

    fn alive_keys(&self) -> Vec<EdgeKey> {
        (0..self.keys.len())
            .filter(|&i| !self.removed[i])
            .map(|i| self.keys[i])
            .collect()
    }

    fn peel(&mut self, alpha: f64, mut on_remove: impl FnMut(u32)) {
        let mut queue: VecDeque<u32> = VecDeque::new();
        for i in 0..self.keys.len() {
            if !self.removed[i] && !self.queued[i] && float::leq_eps(self.cohesion[i], alpha) {
                self.queued[i] = true;
                queue.push_back(i as u32);
            }
        }
        while let Some(id) = queue.pop_front() {
            self.removed[id as usize] = true;
            self.alive_count -= 1;
            on_remove(id);
            let (u, v) = self.keys[id as usize];
            let f_id = self.freqs[id as usize];
            let (removed, queued, cohesion, freqs) = (
                &mut self.removed,
                &mut self.queued,
                &mut self.cohesion,
                &self.freqs,
            );
            let mut newly = Vec::new();
            merge_adj(&self.adj[&u], &self.adj[&v], |e_uw, e_vw| {
                if removed[e_uw as usize] || removed[e_vw as usize] {
                    return;
                }
                let t = f_id.min(freqs[e_uw as usize]).min(freqs[e_vw as usize]);
                for other in [e_uw, e_vw] {
                    cohesion[other as usize] -= t;
                    if float::leq_eps(cohesion[other as usize], alpha) && !queued[other as usize] {
                        queued[other as usize] = true;
                        newly.push(other);
                    }
                }
            });
            queue.extend(newly);
        }
    }
}

/// Merge two sorted `(neighbor, edge_id)` lists, calling `f(e1, e2)` per
/// common neighbor.
fn merge_adj(a: &[(VertexId, u32)], b: &[(VertexId, u32)], mut f: impl FnMut(u32, u32)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i].1, b[j].1);
                i += 1;
                j += 1;
            }
        }
    }
}

/// The TCFI of edge database networks: level-wise Apriori join with
/// intersection-restricted truss computation.
#[derive(Debug, Clone)]
pub struct EdgeTcfiMiner {
    /// Safety cap on pattern length.
    pub max_len: usize,
}

impl Default for EdgeTcfiMiner {
    fn default() -> Self {
        EdgeTcfiMiner {
            max_len: usize::MAX,
        }
    }
}

impl EdgeTcfiMiner {
    /// Mines every non-empty maximal edge-pattern truss at `alpha`.
    pub fn mine(&self, network: &EdgeDatabaseNetwork, alpha: f64) -> crate::MiningResult {
        let sw = Stopwatch::start();
        let mut stats = crate::MinerStats::default();
        let mut all: Vec<PatternTruss> = Vec::new();

        // Level 1.
        let mut level: Vec<PatternTruss> = Vec::new();
        for item in network.items_in_use() {
            let pattern = Pattern::singleton(item);
            stats.candidates_generated += 1;
            stats.mptd_calls += 1;
            let truss = network.maximal_edge_pattern_truss(&pattern, alpha, None);
            if !truss.is_empty() {
                level.push(truss);
            }
        }

        let mut k = 2usize;
        while !level.is_empty() && k <= self.max_len {
            let mut prev_patterns: Vec<Pattern> = level.iter().map(|t| t.pattern.clone()).collect();
            let by_pattern: FxHashMap<Pattern, PatternTruss> =
                level.drain(..).map(|t| (t.pattern.clone(), t)).collect();
            let candidates = tc_txdb::apriori::generate_candidates(&mut prev_patterns);
            stats.candidates_generated += candidates.len();

            let mut next = Vec::new();
            for cand in candidates {
                let left = &by_pattern[&prev_patterns[cand.left]];
                let right = &by_pattern[&prev_patterns[cand.right]];
                let intersection = left.intersect_edges(right);
                if intersection.is_empty() {
                    stats.pruned_by_intersection += 1;
                    continue;
                }
                stats.mptd_calls += 1;
                let truss =
                    network.maximal_edge_pattern_truss(&cand.pattern, alpha, Some(&intersection));
                if !truss.is_empty() {
                    next.push(truss);
                }
            }
            all.extend(by_pattern.into_values());
            level = next;
            k += 1;
        }
        all.append(&mut level);

        stats.elapsed_secs = sw.elapsed_secs();
        crate::MiningResult::new(alpha, all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle 0-1-2 whose edges all frequently discuss "rust" (plus some
    /// low-frequency "noise"); edge (2,3) discusses "cooking" only; triangle
    /// 3-4-5 discusses "rust" on 2 of 3 edges only (no fully-themed
    /// triangle → no truss).
    fn network() -> EdgeDatabaseNetwork {
        let mut b = EdgeDatabaseNetworkBuilder::new();
        let rust = b.intern_item("rust");
        let cook = b.intern_item("cooking");
        let noise = b.intern_item("noise");
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            for _ in 0..4 {
                b.add_transaction(u, v, &[rust]);
            }
            b.add_transaction(u, v, &[noise]);
        }
        for _ in 0..3 {
            b.add_transaction(2, 3, &[cook]);
        }
        b.add_transaction(3, 4, &[rust]);
        b.add_transaction(4, 5, &[rust]);
        b.add_edge(3, 5); // no transactions at all
        b.build().unwrap()
    }

    #[test]
    fn shape() {
        let net = network();
        assert_eq!(net.num_edges(), 7);
        assert_eq!(net.num_vertices(), 6);
        let rust = net.item_space().get("rust").unwrap();
        assert_eq!(net.edges_with_item(rust).len(), 5);
    }

    #[test]
    fn edge_frequencies() {
        let net = network();
        let rust = Pattern::singleton(net.item_space().get("rust").unwrap());
        assert!((net.frequency(0, 1, &rust) - 0.8).abs() < 1e-12);
        assert_eq!(net.frequency(2, 3, &rust), 0.0);
        assert_eq!(net.frequency(3, 5, &rust), 0.0, "empty edge db");
        assert_eq!(net.frequency(9, 9, &rust), 0.0, "missing edge");
    }

    #[test]
    fn truss_keeps_fully_themed_triangle() {
        let net = network();
        let rust = Pattern::singleton(net.item_space().get("rust").unwrap());
        // Triangle 0-1-2: every edge f = 0.8 → eco = 0.8 per edge.
        let t = net.maximal_edge_pattern_truss(&rust, 0.5, None);
        assert_eq!(t.edges, vec![(0, 1), (0, 2), (1, 2)]);
        // The 3-4-5 triangle has a frequency-0 edge → never themed → no
        // triangle → its rust edges die at α ≥ 0.
        assert!(!t.contains_edge((3, 4)));
    }

    #[test]
    fn truss_vanishes_above_cohesion() {
        let net = network();
        let rust = Pattern::singleton(net.item_space().get("rust").unwrap());
        assert!(net.maximal_edge_pattern_truss(&rust, 0.8, None).is_empty());
    }

    #[test]
    fn cooking_theme_has_no_triangle() {
        let net = network();
        let cook = Pattern::singleton(net.item_space().get("cooking").unwrap());
        let t = net.maximal_edge_pattern_truss(&cook, 0.0, None);
        assert!(t.is_empty(), "cooking lives on a single edge — no triangle");
    }

    #[test]
    fn miner_end_to_end() {
        let net = network();
        // At α = 0.3: the rust triangle survives (eco = 0.8); the noise
        // triangle (eco = 0.2) and everything else die.
        let result = EdgeTcfiMiner::default().mine(&net, 0.3);
        assert_eq!(result.np(), 1);
        let rust = Pattern::singleton(net.item_space().get("rust").unwrap());
        assert_eq!(result.truss_of(&rust).unwrap().vertices, vec![0, 1, 2]);
        let communities = result.communities();
        assert_eq!(communities.len(), 1);

        // At α = 0.1 the low-frequency noise theme also qualifies.
        let result_low = EdgeTcfiMiner::default().mine(&net, 0.1);
        assert_eq!(result_low.np(), 2);
    }

    #[test]
    fn multi_item_edge_theme() {
        // Edges carrying {chat, code} together should form a pair theme.
        let mut b = EdgeDatabaseNetworkBuilder::new();
        let chat = b.intern_item("chat");
        let code = b.intern_item("code");
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            for _ in 0..5 {
                b.add_transaction(u, v, &[chat, code]);
            }
        }
        let net = b.build().unwrap();
        let result = EdgeTcfiMiner::default().mine(&net, 0.5);
        let pair = Pattern::new(vec![chat, code]);
        let t = result.truss_of(&pair).expect("pair theme");
        assert_eq!(t.num_edges(), 6, "both triangles fully themed");
        // Three qualified patterns: {chat}, {code}, {chat, code}.
        assert_eq!(result.np(), 3);
    }

    #[test]
    fn anti_monotonicity_carries_over() {
        let mut b = EdgeDatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            for _ in 0..3 {
                b.add_transaction(u, v, &[x, y]);
            }
            b.add_transaction(u, v, &[x]);
        }
        let net = b.build().unwrap();
        for alpha in [0.0, 0.4, 0.7] {
            let cx = net.maximal_edge_pattern_truss(&Pattern::singleton(x), alpha, None);
            let cxy = net.maximal_edge_pattern_truss(&Pattern::new(vec![x, y]), alpha, None);
            assert!(cxy.is_subgraph_of(&cx), "Theorem 5.1 lift at α = {alpha}");
        }
    }

    #[test]
    fn intersection_restriction_is_sound() {
        // Mining {x,y} within C*_x ∩ C*_y equals mining it globally.
        let mut b = EdgeDatabaseNetworkBuilder::new();
        let x = b.intern_item("x");
        let y = b.intern_item("y");
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            let items: Vec<Item> = if u < 3 { vec![x, y] } else { vec![x] };
            for _ in 0..4 {
                b.add_transaction(u, v, &items);
            }
        }
        let net = b.build().unwrap();
        let cx = net.maximal_edge_pattern_truss(&Pattern::singleton(x), 0.5, None);
        let cy = net.maximal_edge_pattern_truss(&Pattern::singleton(y), 0.5, None);
        let inter = cx.intersect_edges(&cy);
        let global = net.maximal_edge_pattern_truss(&Pattern::new(vec![x, y]), 0.5, None);
        let restricted =
            net.maximal_edge_pattern_truss(&Pattern::new(vec![x, y]), 0.5, Some(&inter));
        assert_eq!(global.edges, restricted.edges);
    }

    #[test]
    fn builder_rejects_unknown_items() {
        let mut b = EdgeDatabaseNetworkBuilder::new();
        b.add_transaction(0, 1, &[Item(9)]);
        assert_eq!(b.build().unwrap_err(), EdgeBuildError::UnknownItem(Item(9)));
    }

    #[test]
    fn empty_network() {
        let net = EdgeDatabaseNetworkBuilder::new().build().unwrap();
        assert_eq!(net.num_edges(), 0);
        let r = EdgeTcfiMiner::default().mine(&net, 0.0);
        assert_eq!(r.np(), 0);
    }
}
