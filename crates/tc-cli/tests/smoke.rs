//! End-to-end smoke test for the `tc` binary itself.
//!
//! The in-process tests in `commands.rs` cover the subcommand logic;
//! this test covers the *binary path* — argument splitting, exit codes,
//! stdout/stderr wiring — by spawning the compiled executable the way CI
//! and users do: generate a tiny network, inspect it, mine it, index it,
//! and query the index.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the compiled `tc` binary with `args`, panicking on spawn failure.
fn tc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tc"))
        .args(args)
        .output()
        .expect("failed to spawn the tc binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_success(out: &Output, context: &str) {
    assert!(
        out.status.success(),
        "{context} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        stdout(out),
        stderr(out),
    );
}

/// A scratch directory removed on drop, so failed runs don't leak files.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tc_smoke_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn mine_index_query_pipeline() {
    let scratch = Scratch::new("pipeline");
    let net = scratch.path("tiny.dbnet");
    let tree = scratch.path("tiny.tct");

    // Generate: a tiny planted-community network (deterministic seed).
    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "7",
    ]);
    assert_success(&out, "tc generate");
    assert!(
        stdout(&out).contains("vertices"),
        "generate should report stats: {}",
        stdout(&out)
    );
    assert!(Path::new(&net).exists(), "generate must write the network");

    // Stats: loads the file back and prints graph metrics.
    let out = tc(&["stats", &net]);
    assert_success(&out, "tc stats");
    for field in ["vertices:", "edges:", "triangles:"] {
        assert!(
            stdout(&out).contains(field),
            "stats output missing '{field}':\n{}",
            stdout(&out)
        );
    }

    // Mine: the planted generator guarantees at least one theme community.
    let out = tc(&["mine", &net, "--alpha", "0.1", "--top", "5"]);
    assert_success(&out, "tc mine");
    assert!(
        stdout(&out).contains("maximal pattern trusses"),
        "mine output:\n{}",
        stdout(&out)
    );

    // Index: build and persist the TC-Tree.
    let out = tc(&["index", &net, "--out", &tree, "--threads", "2"]);
    assert_success(&out, "tc index");
    assert!(Path::new(&tree).exists(), "index must write the tree");

    // Query by threshold, then by pattern with name resolution.
    let out = tc(&["query", &tree, "--alpha", "0.2"]);
    assert_success(&out, "tc query --alpha");
    assert!(
        stdout(&out).contains("retrieved"),
        "query output:\n{}",
        stdout(&out)
    );

    let out = tc(&["query", &tree, "--pattern", "0,1", "--network", &net]);
    assert_success(&out, "tc query --pattern");
}

#[test]
fn segment_format_round_trip() {
    let scratch = Scratch::new("segment");
    let net = scratch.path("net.dbnet");
    let tree_seg = scratch.path("tree.seg");
    let tree_txt = scratch.path("tree.tct");

    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "11",
    ]);
    assert_success(&out, "tc generate");

    // Index straight into the binary segment format.
    let out = tc(&["index", &net, "--out", &tree_seg, "--format", "seg"]);
    assert_success(&out, "tc index --format seg");

    // Query auto-detects the segment by magic bytes and reports laziness.
    let out = tc(&["query", &tree_seg, "--alpha", "0.1"]);
    assert_success(&out, "tc query (segment)");
    assert!(
        stdout(&out).contains("segment backend: materialized"),
        "segment query should report on-demand materialisation:\n{}",
        stdout(&out)
    );

    // Convert segment → text; the text tree answers the same query.
    let out = tc(&["convert", &tree_seg, &tree_txt, "--to", "text"]);
    assert_success(&out, "tc convert");
    let seg_answer = stdout(&tc(&["query", &tree_seg, "--alpha", "0.1"]));
    let txt_answer = stdout(&tc(&["query", &tree_txt, "--alpha", "0.1"]));
    let retrieved = |s: &str| {
        s.lines()
            .find(|l| l.contains("retrieved"))
            .map(|l| l.split_whitespace().nth(1).unwrap().to_string())
    };
    assert_eq!(
        retrieved(&seg_answer),
        retrieved(&txt_answer),
        "segment and text backends disagree:\n{seg_answer}\n{txt_answer}"
    );

    // A corrupted segment fails with a checksum diagnostic, not a crash.
    // Damage the last page — the tail of the lazily-read LEVELS section —
    // and query at α = 0, which materialises every node and so must read it.
    let mut bytes = std::fs::read(&tree_seg).expect("read segment");
    let pos = bytes.len() - 100;
    bytes[pos] ^= 0x40;
    std::fs::write(&tree_seg, &bytes).expect("write damaged segment");
    let out = tc(&["query", &tree_seg, "--alpha", "0.0"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "damaged segment must be an error"
    );
    assert!(
        stderr(&out).contains("checksum") || stderr(&out).contains("corrupt"),
        "diagnostic should name the damage:\n{}",
        stderr(&out)
    );
}

#[test]
fn thread_matrix_is_deterministic() {
    // The CI thread-matrix step asserts the same invariant on the release
    // binary: the mined pattern set and the built index must be
    // byte-identical at every `--threads` count.
    let scratch = Scratch::new("threads");
    let net = scratch.path("net.dbnet");
    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "7",
    ]);
    assert_success(&out, "tc generate");

    // Mined community listings (the indented lines; the summary line
    // carries wall-clock noise) must agree across thread counts.
    let communities = |threads: &str| {
        let out = tc(&[
            "mine",
            &net,
            "--alpha",
            "0.1",
            "--top",
            "100",
            "--threads",
            threads,
        ]);
        assert_success(&out, "tc mine --threads");
        stdout(&out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let reference = communities("1");
    assert!(
        !reference.is_empty(),
        "planted network must yield communities"
    );
    for threads in ["2", "8"] {
        assert_eq!(
            reference,
            communities(threads),
            "mined pattern set differs at --threads {threads}"
        );
    }

    // Index files must be byte-identical across thread counts.
    let reference_tree = scratch.path("t1.tct");
    let out = tc(&["index", &net, "--out", &reference_tree, "--threads", "1"]);
    assert_success(&out, "tc index --threads 1");
    let reference_bytes = std::fs::read(&reference_tree).expect("read tree");
    for threads in ["2", "8"] {
        let tree = scratch.path(&format!("t{threads}.tct"));
        let out = tc(&["index", &net, "--out", &tree, "--threads", threads]);
        assert_success(&out, "tc index --threads");
        assert_eq!(
            reference_bytes,
            std::fs::read(&tree).expect("read tree"),
            "index bytes differ at --threads {threads}"
        );
    }
}

#[test]
fn serve_daemon_round_trip() {
    // The daemon path end to end, exactly as the CI serve-smoke job runs
    // it: spawn `tc serve` on an ephemeral port, learn the port from the
    // listening line, drive it with `tc query --remote`, compare the
    // truss listing byte-for-byte against the local query, overload it
    // into a BUSY, and shut it down cleanly via the protocol.
    use std::io::{BufRead, BufReader};

    let scratch = Scratch::new("serve");
    let net = scratch.path("net.dbnet");
    let tree_seg = scratch.path("tree.seg");
    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "7",
    ]);
    assert_success(&out, "tc generate");
    let out = tc(&["index", &net, "--out", &tree_seg, "--format", "seg"]);
    assert_success(&out, "tc index --format seg");

    // Port 0: the daemon prints the resolved address on its first line
    // ("tc-serve listening on <addr> …"). Kill-on-drop: a failing assert
    // below must not orphan the daemon (it would hold the test harness's
    // output pipe open forever).
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
    let mut daemon = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_tc"))
            .args([
                "serve",
                &tree_seg,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--max-inflight",
                "1",
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn tc serve"),
    );
    let mut daemon_stdout = BufReader::new(daemon.0.stdout.take().expect("daemon stdout"));
    let mut line = String::new();
    daemon_stdout
        .read_line(&mut line)
        .expect("read listening line");
    assert!(
        line.starts_with("tc-serve listening on "),
        "malformed listening line: {line}"
    );
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("malformed listening line: {line}"))
        .to_string();

    // Remote truss listing must match the local one byte for byte.
    let trusses = |s: &str| {
        s.lines()
            .filter(|l| l.starts_with("  "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let local = stdout(&tc(&["query", &tree_seg, "--alpha", "0.1"]));
    let out = tc(&["query", "--remote", &addr, "--alpha", "0.1"]);
    assert_success(&out, "tc query --remote");
    assert_eq!(
        trusses(&local),
        trusses(&stdout(&out)),
        "remote and local answers differ:\n{local}\n---\n{}",
        stdout(&out)
    );
    assert!(!trusses(&local).is_empty(), "query must retrieve something");
    let local = stdout(&tc(&[
        "query",
        &tree_seg,
        "--pattern",
        "0,1",
        "--network",
        &net,
    ]));
    let out = tc(&[
        "query",
        "--remote",
        &addr,
        "--pattern",
        "0,1",
        "--network",
        &net,
    ]);
    assert_success(&out, "tc query --remote --pattern");
    assert_eq!(trusses(&local), trusses(&stdout(&out)));

    // Overload: hold the single admission slot with a raw connection and
    // watch the next client get an explicit BUSY (exit 2, no hang).
    let holder = std::net::TcpStream::connect(&addr).expect("holder connect");
    let mut greeting = String::new();
    BufReader::new(holder.try_clone().expect("clone holder"))
        .read_line(&mut greeting)
        .expect("holder greeting");
    assert!(greeting.contains(" OK "), "holder not admitted: {greeting}");
    let out = tc(&["query", "--remote", &addr, "--alpha", "0.1"]);
    assert_eq!(out.status.code(), Some(2), "overload must fail fast");
    assert!(
        stderr(&out).contains("busy"),
        "overload diagnostic should say busy:\n{}",
        stderr(&out)
    );
    drop(holder);

    // Released slot readmits (poll briefly: the server notices the
    // disconnect at its next read tick), then SHUTDOWN stops the daemon.
    let mut readmitted = false;
    for _ in 0..100 {
        let out = tc(&["query", "--remote", &addr, "--alpha", "0.1"]);
        if out.status.success() {
            readmitted = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(readmitted, "slot never freed after holder disconnect");

    let mut shutdown = std::net::TcpStream::connect(&addr).expect("shutdown connect");
    let mut reader = BufReader::new(shutdown.try_clone().expect("clone shutdown"));
    line.clear();
    reader.read_line(&mut line).expect("shutdown greeting");
    std::io::Write::write_all(&mut shutdown, b"SHUTDOWN\n").expect("send SHUTDOWN");
    line.clear();
    reader.read_line(&mut line).expect("read BYE");
    assert_eq!(line.trim_end(), "BYE");

    let status = daemon.0.wait().expect("daemon exit");
    assert!(status.success(), "daemon must exit 0 on SHUTDOWN: {status}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut daemon_stdout, &mut rest).expect("drain daemon stdout");
    assert!(
        rest.contains("shutdown complete"),
        "daemon should print its final counters:\n{rest}"
    );
    assert!(
        rest.contains("busy-rejected"),
        "final counters should include admission telemetry:\n{rest}"
    );
}

#[test]
fn unknown_flags_fail_with_a_suggestion() {
    let out = tc(&["mine", "net.dbnet", "--thread", "8"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("did you mean --threads"),
        "typo diagnostic:\n{}",
        stderr(&out)
    );
}

#[test]
fn help_and_error_paths() {
    // --help prints usage and succeeds.
    let out = tc(&["--help"]);
    assert_success(&out, "tc --help");
    assert!(stderr(&out).contains("USAGE"), "help text goes to stderr");

    // Unknown subcommands are a usage error (exit 2), not a crash.
    let out = tc(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    // Missing files fail cleanly with a diagnostic.
    let out = tc(&["stats", "/nonexistent/net.dbnet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error"));
}
