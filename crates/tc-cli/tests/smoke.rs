//! End-to-end smoke test for the `tc` binary itself.
//!
//! The in-process tests in `commands.rs` cover the subcommand logic;
//! this test covers the *binary path* — argument splitting, exit codes,
//! stdout/stderr wiring — by spawning the compiled executable the way CI
//! and users do: generate a tiny network, inspect it, mine it, index it,
//! and query the index.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the compiled `tc` binary with `args`, panicking on spawn failure.
fn tc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tc"))
        .args(args)
        .output()
        .expect("failed to spawn the tc binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_success(out: &Output, context: &str) {
    assert!(
        out.status.success(),
        "{context} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        stdout(out),
        stderr(out),
    );
}

/// A scratch directory removed on drop, so failed runs don't leak files.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tc_smoke_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn mine_index_query_pipeline() {
    let scratch = Scratch::new("pipeline");
    let net = scratch.path("tiny.dbnet");
    let tree = scratch.path("tiny.tct");

    // Generate: a tiny planted-community network (deterministic seed).
    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "7",
    ]);
    assert_success(&out, "tc generate");
    assert!(
        stdout(&out).contains("vertices"),
        "generate should report stats: {}",
        stdout(&out)
    );
    assert!(Path::new(&net).exists(), "generate must write the network");

    // Stats: loads the file back and prints graph metrics.
    let out = tc(&["stats", &net]);
    assert_success(&out, "tc stats");
    for field in ["vertices:", "edges:", "triangles:"] {
        assert!(
            stdout(&out).contains(field),
            "stats output missing '{field}':\n{}",
            stdout(&out)
        );
    }

    // Mine: the planted generator guarantees at least one theme community.
    let out = tc(&["mine", &net, "--alpha", "0.1", "--top", "5"]);
    assert_success(&out, "tc mine");
    assert!(
        stdout(&out).contains("maximal pattern trusses"),
        "mine output:\n{}",
        stdout(&out)
    );

    // Index: build and persist the TC-Tree.
    let out = tc(&["index", &net, "--out", &tree, "--threads", "2"]);
    assert_success(&out, "tc index");
    assert!(Path::new(&tree).exists(), "index must write the tree");

    // Query by threshold, then by pattern with name resolution.
    let out = tc(&["query", &tree, "--alpha", "0.2"]);
    assert_success(&out, "tc query --alpha");
    assert!(
        stdout(&out).contains("retrieved"),
        "query output:\n{}",
        stdout(&out)
    );

    let out = tc(&["query", &tree, "--pattern", "0,1", "--network", &net]);
    assert_success(&out, "tc query --pattern");
}

#[test]
fn segment_format_round_trip() {
    let scratch = Scratch::new("segment");
    let net = scratch.path("net.dbnet");
    let tree_seg = scratch.path("tree.seg");
    let tree_txt = scratch.path("tree.tct");

    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "11",
    ]);
    assert_success(&out, "tc generate");

    // Index straight into the binary segment format.
    let out = tc(&["index", &net, "--out", &tree_seg, "--format", "seg"]);
    assert_success(&out, "tc index --format seg");

    // Query auto-detects the segment by magic bytes and reports laziness.
    let out = tc(&["query", &tree_seg, "--alpha", "0.1"]);
    assert_success(&out, "tc query (segment)");
    assert!(
        stdout(&out).contains("segment backend: materialized"),
        "segment query should report on-demand materialisation:\n{}",
        stdout(&out)
    );

    // Convert segment → text; the text tree answers the same query.
    let out = tc(&["convert", &tree_seg, &tree_txt, "--to", "text"]);
    assert_success(&out, "tc convert");
    let seg_answer = stdout(&tc(&["query", &tree_seg, "--alpha", "0.1"]));
    let txt_answer = stdout(&tc(&["query", &tree_txt, "--alpha", "0.1"]));
    let retrieved = |s: &str| {
        s.lines()
            .find(|l| l.contains("retrieved"))
            .map(|l| l.split_whitespace().nth(1).unwrap().to_string())
    };
    assert_eq!(
        retrieved(&seg_answer),
        retrieved(&txt_answer),
        "segment and text backends disagree:\n{seg_answer}\n{txt_answer}"
    );

    // A corrupted segment fails with a checksum diagnostic, not a crash.
    // Damage the last page — the tail of the lazily-read LEVELS section —
    // and query at α = 0, which materialises every node and so must read it.
    let mut bytes = std::fs::read(&tree_seg).expect("read segment");
    let pos = bytes.len() - 100;
    bytes[pos] ^= 0x40;
    std::fs::write(&tree_seg, &bytes).expect("write damaged segment");
    let out = tc(&["query", &tree_seg, "--alpha", "0.0"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "damaged segment must be an error"
    );
    assert!(
        stderr(&out).contains("checksum") || stderr(&out).contains("corrupt"),
        "diagnostic should name the damage:\n{}",
        stderr(&out)
    );
}

#[test]
fn thread_matrix_is_deterministic() {
    // The CI thread-matrix step asserts the same invariant on the release
    // binary: the mined pattern set and the built index must be
    // byte-identical at every `--threads` count.
    let scratch = Scratch::new("threads");
    let net = scratch.path("net.dbnet");
    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "7",
    ]);
    assert_success(&out, "tc generate");

    // Mined community listings (the indented lines; the summary line
    // carries wall-clock noise) must agree across thread counts.
    let communities = |threads: &str| {
        let out = tc(&[
            "mine",
            &net,
            "--alpha",
            "0.1",
            "--top",
            "100",
            "--threads",
            threads,
        ]);
        assert_success(&out, "tc mine --threads");
        stdout(&out)
            .lines()
            .filter(|l| l.starts_with("  "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let reference = communities("1");
    assert!(
        !reference.is_empty(),
        "planted network must yield communities"
    );
    for threads in ["2", "8"] {
        assert_eq!(
            reference,
            communities(threads),
            "mined pattern set differs at --threads {threads}"
        );
    }

    // Index files must be byte-identical across thread counts.
    let reference_tree = scratch.path("t1.tct");
    let out = tc(&["index", &net, "--out", &reference_tree, "--threads", "1"]);
    assert_success(&out, "tc index --threads 1");
    let reference_bytes = std::fs::read(&reference_tree).expect("read tree");
    for threads in ["2", "8"] {
        let tree = scratch.path(&format!("t{threads}.tct"));
        let out = tc(&["index", &net, "--out", &tree, "--threads", threads]);
        assert_success(&out, "tc index --threads");
        assert_eq!(
            reference_bytes,
            std::fs::read(&tree).expect("read tree"),
            "index bytes differ at --threads {threads}"
        );
    }
}

#[test]
fn help_and_error_paths() {
    // --help prints usage and succeeds.
    let out = tc(&["--help"]);
    assert_success(&out, "tc --help");
    assert!(stderr(&out).contains("USAGE"), "help text goes to stderr");

    // Unknown subcommands are a usage error (exit 2), not a crash.
    let out = tc(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    // Missing files fail cleanly with a diagnostic.
    let out = tc(&["stats", "/nonexistent/net.dbnet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error"));
}
