//! End-to-end smoke test for the `tc` binary itself.
//!
//! The in-process tests in `commands.rs` cover the subcommand logic;
//! this test covers the *binary path* — argument splitting, exit codes,
//! stdout/stderr wiring — by spawning the compiled executable the way CI
//! and users do: generate a tiny network, inspect it, mine it, index it,
//! and query the index.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Runs the compiled `tc` binary with `args`, panicking on spawn failure.
fn tc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tc"))
        .args(args)
        .output()
        .expect("failed to spawn the tc binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn assert_success(out: &Output, context: &str) {
    assert!(
        out.status.success(),
        "{context} failed (status {:?})\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        stdout(out),
        stderr(out),
    );
}

/// A scratch directory removed on drop, so failed runs don't leak files.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tc_smoke_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn mine_index_query_pipeline() {
    let scratch = Scratch::new("pipeline");
    let net = scratch.path("tiny.dbnet");
    let tree = scratch.path("tiny.tct");

    // Generate: a tiny planted-community network (deterministic seed).
    let out = tc(&[
        "generate", "--kind", "planted", "--out", &net, "--seed", "7",
    ]);
    assert_success(&out, "tc generate");
    assert!(
        stdout(&out).contains("vertices"),
        "generate should report stats: {}",
        stdout(&out)
    );
    assert!(Path::new(&net).exists(), "generate must write the network");

    // Stats: loads the file back and prints graph metrics.
    let out = tc(&["stats", &net]);
    assert_success(&out, "tc stats");
    for field in ["vertices:", "edges:", "triangles:"] {
        assert!(
            stdout(&out).contains(field),
            "stats output missing '{field}':\n{}",
            stdout(&out)
        );
    }

    // Mine: the planted generator guarantees at least one theme community.
    let out = tc(&["mine", &net, "--alpha", "0.1", "--top", "5"]);
    assert_success(&out, "tc mine");
    assert!(
        stdout(&out).contains("maximal pattern trusses"),
        "mine output:\n{}",
        stdout(&out)
    );

    // Index: build and persist the TC-Tree.
    let out = tc(&["index", &net, "--out", &tree, "--threads", "2"]);
    assert_success(&out, "tc index");
    assert!(Path::new(&tree).exists(), "index must write the tree");

    // Query by threshold, then by pattern with name resolution.
    let out = tc(&["query", &tree, "--alpha", "0.2"]);
    assert_success(&out, "tc query --alpha");
    assert!(
        stdout(&out).contains("retrieved"),
        "query output:\n{}",
        stdout(&out)
    );

    let out = tc(&["query", &tree, "--pattern", "0,1", "--network", &net]);
    assert_success(&out, "tc query --pattern");
}

#[test]
fn help_and_error_paths() {
    // --help prints usage and succeeds.
    let out = tc(&["--help"]);
    assert_success(&out, "tc --help");
    assert!(stderr(&out).contains("USAGE"), "help text goes to stderr");

    // Unknown subcommands are a usage error (exit 2), not a crash.
    let out = tc(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    // Missing files fail cleanly with a diagnostic.
    let out = tc(&["stats", "/nonexistent/net.dbnet"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error"));
}
