//! `tc` — the theme-communities command line tool.
//!
//! ```text
//! tc generate --kind checkin|coauthor|syn|planted --out net.dbnet [--scale F] [--seed N]
//! tc stats   <net>
//! tc mine    <net> --alpha F [--miner tcfi|tcfa|tcs] [--threads N] [--epsilon F] [--top N]
//! tc index   <net> --out tree.tct|tree.seg [--threads N] [--format auto|text|seg]
//! tc query   <tree> [--alpha F] [--pattern i1,i2,…] [--network net] [--json]
//! tc query   --remote host:port [--alpha F] [--pattern i1,i2,…] [--network net] [--json]
//! tc serve   <tree.seg> [--addr host:port] [--http-addr host:port] [--workers N]
//!            [--max-inflight N] [--rate-limit per-sec]
//! tc shard   <tree> --shards N [--out-dir DIR] [--addrs a1,a2,…] [--host H] [--port-base P]
//! tc router  <shards.tcmap> [--http-addr host:port] [--max-inflight N] [--partial]
//! tc ingest  <net.wal> --ops <file|-> [--base base.seg] [--durability always|batch]
//! tc checkpoint <net.wal> --out <net.seg> [--base base.seg]
//! tc convert <in> <out> [--to auto|text|seg]
//! ```
//!
//! Network and tree arguments accept both the text formats and the binary
//! segment format; readers auto-detect by magic bytes. `tc serve` opens a
//! segment tree once and answers queries over TCP (see `crates/tc-serve`);
//! `tc query --remote` asks such a daemon instead of a local file.
//! `tc ingest` appends mutations to a write-ahead log beside a base
//! segment; `tc checkpoint` folds log + base into a fresh segment.

mod commands;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("generate") => commands::generate(&args[1..]),
        Some("stats") => commands::stats(&args[1..]),
        Some("mine") => commands::mine(&args[1..]),
        Some("index") => commands::index(&args[1..]),
        Some("query") => commands::query(&args[1..]),
        Some("serve") => commands::serve(&args[1..]),
        Some("shard") => commands::shard(&args[1..]),
        Some("router") => commands::router(&args[1..]),
        Some("ingest") => commands::ingest(&args[1..]),
        Some("checkpoint") => commands::checkpoint(&args[1..]),
        Some("convert") => commands::convert(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n");
            print_usage();
            2
        }
    };
    std::process::exit(code);
}

fn print_usage() {
    eprintln!(
        "tc — theme communities from database networks (VLDB 2019)

USAGE:
  tc generate --kind <checkin|coauthor|syn|planted> --out <net> [--scale F] [--seed N] [--format auto|text|seg]
  tc stats    <net>
  tc mine     <net> --alpha <F> [--miner tcfi|tcfa|tcs] [--threads N] [--epsilon F] [--top N]
  tc index    <net> --out <tree.tct|tree.seg> [--threads N] [--format auto|text|seg]
  tc query    <tree> [--alpha F] [--pattern items] [--network net] [--json]
  tc query    --remote <host:port> [--alpha F] [--pattern items] [--network net] [--json]
  tc serve    <tree.seg> [--addr host:port] [--http-addr host:port] [--workers N] [--max-inflight N]
              [--session-timeout secs] [--rate-limit per-sec]
  tc shard    <tree> --shards N [--out-dir DIR] [--addrs a1,a2,…] [--host HOST] [--port-base PORT]
  tc router   <shards.tcmap> [--http-addr host:port] [--max-inflight N] [--session-timeout secs]
              [--rate-limit per-sec] [--partial]
  tc ingest   <net.wal> --ops <file|-> [--base base.seg] [--durability always|batch]
  tc checkpoint <net.wal> --out <net.seg> [--base base.seg]
  tc convert  <in> <out> [--to auto|text|seg]

Readers auto-detect the text formats (dbnet/tctree) and the binary
segment format (.seg) by magic bytes; --format auto writes a segment
when the output path ends in .seg. --threads defaults to every core
(mine with >1 thread uses the work-stealing TCFI variant, index the
parallel layer fan-out); results are identical at every thread count.
tc serve answers QBA/QBP over TCP with bounded admission (connections
beyond --max-inflight get a BUSY greeting) and, with --http-addr, over
an HTTP/JSON gateway too (GET /qba, /qbp, /query; POST /query batches;
GET /healthz and Prometheus GET /metrics). --rate-limit caps each
client IP at N requests/second on top of the inflight bound. SIGHUP
re-opens the segment and hot-swaps it without dropping sessions; stop
the daemon with SIGTERM or a client's SHUTDOWN verb. tc query --json
prints the serving wire object, byte-comparable with curl of /qba or
/qbp. tc shard hash-partitions a tree into self-contained per-shard
segments plus a shards.tcmap map; tc router loads the map and serves
the same HTTP surface by scattering to every shard daemon and merging,
answers byte-identical to the unsharded tree (--partial keeps serving
the live shards' union when a daemon is down, naming the missing
shards in an X-TC-Partial-Shards header; without it a down shard is a
503). tc ingest appends to a crash-safe write-ahead
log (ops lines: item NAME / db V / edge U V / tx V a,b,c); tc
checkpoint folds log + base segment into a fresh segment and resets
the log.

EXAMPLES:
  tc generate --kind coauthor --out aminer.dbnet
  tc mine aminer.dbnet --alpha 0.1 --top 10
  tc index aminer.dbnet --out aminer.seg --format seg
  tc query aminer.seg --alpha 0.2
  tc query aminer.seg --pattern 'data mining,sequential pattern' --network aminer.dbnet
  tc serve aminer.seg --addr 127.0.0.1:7641 --http-addr 127.0.0.1:8080 --rate-limit 50
  tc shard aminer.seg --shards 4 --out-dir shards
  tc router shards/shards.tcmap --http-addr 127.0.0.1:7642 --partial
  tc query --remote 127.0.0.1:7641 --alpha 0.2 --retries 5
  curl 'http://127.0.0.1:8080/qba?alpha=0.2'
  tc ingest net.wal --ops mutations.txt --base net.seg
  tc checkpoint net.wal --base net.seg --out net2.seg
  tc convert aminer.dbnet aminer.seg"
    );
}
