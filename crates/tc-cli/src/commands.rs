//! Subcommand implementations for the `tc` binary.
//!
//! Networks and TC-Trees exist in two formats — the line-oriented text
//! formats (`dbnet v1` / `tctree v1`) and the binary segment format of
//! `tc-store`. Readers auto-detect by magic bytes; writers pick by the
//! `--format` flag (`auto` follows the `.seg` extension).

use std::path::Path;
use tc_core::{DatabaseNetwork, Miner, ParallelTcfiMiner, TcfaMiner, TcfiMiner, TcsMiner};
use tc_index::{TcTree, TcTreeBuilder};
use tc_store::{DetectedFormat, SegmentTcTree};
use tc_txdb::Pattern;

/// Minimal flag parser: `--key value` pairs plus positional arguments.
///
/// Every subcommand declares its known flags via [`Flags::parse`]'s
/// `known` list; an unrecognised `--flag` is rejected up front (with a
/// "did you mean" suggestion when a known flag is close) instead of
/// being silently swallowed as an unread key.
#[derive(Debug)]
struct Flags {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

/// Levenshtein edit distance — powers the "did you mean" suggestion.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

impl Flags {
    /// Parses `args` against the subcommand's `known` flag names.
    fn parse(args: &[String], known: &[&str]) -> Result<Flags, String> {
        Flags::parse_with_switches(args, known, &[])
    }

    /// Like [`Flags::parse`], but flags named in `switches` take no
    /// value — their presence alone is the signal (read with
    /// [`Flags::has`]).
    fn parse_with_switches(
        args: &[String],
        known: &[&str],
        switches: &[&str],
    ) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if switches.contains(&key) {
                    options.push((key.to_string(), String::new()));
                    continue;
                }
                if !known.contains(&key) {
                    let all: Vec<&str> = known.iter().chain(switches).copied().collect();
                    let suggestion = all
                        .iter()
                        .map(|k| (edit_distance(key, k), k))
                        .min()
                        .filter(|(d, _)| *d <= 2)
                        .map(|(_, k)| *k);
                    return Err(match suggestion {
                        Some(s) => format!("unknown flag --{key} (did you mean --{s}?)"),
                        None if all.is_empty() => {
                            format!("unknown flag --{key} (this subcommand takes no flags)")
                        }
                        None => format!(
                            "unknown flag --{key} (expected one of: {})",
                            all.iter()
                                .map(|k| format!("--{k}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                options.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags {
            positional,
            options,
        })
    }

    /// Whether a switch flag was present.
    fn has(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value '{v}'")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} value '{v}'")),
        }
    }
}

fn fail(msg: impl std::fmt::Display) -> i32 {
    eprintln!("error: {msg}");
    2
}

/// Parses a byte-size flag value: a plain integer with an optional
/// `K`/`M`/`G` (or `KB`/`MB`/`GB`, case-insensitive) binary suffix, e.g.
/// `4096`, `64M`, `1G`. `0` means "unbounded" to the callers.
fn parse_byte_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let upper = t.to_ascii_uppercase();
    let (digits, shift) = if let Some(d) = upper.strip_suffix("GB").or(upper.strip_suffix("G")) {
        (d, 30u32)
    } else if let Some(d) = upper.strip_suffix("MB").or(upper.strip_suffix("M")) {
        (d, 20)
    } else if let Some(d) = upper.strip_suffix("KB").or(upper.strip_suffix("K")) {
        (d, 10)
    } else {
        (upper.as_str(), 0)
    };
    let err = || format!("bad byte size '{s}' (expected N, NK, NM, or NG)");
    let n: u64 = digits.trim().parse().map_err(|_| err())?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("byte size '{s}' overflows"))
}

/// The shared `--threads` default for `mine` and `index`: every core the
/// host offers. Results are identical at any thread count (the parallel
/// miner and builders are exact), so defaulting to full parallelism only
/// changes wall-clock, never output.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves `--format auto|text|seg` against an output path: `auto`
/// follows the `.seg` extension.
fn wants_segment(format: Option<&str>, out: &str) -> Result<bool, String> {
    match format.unwrap_or("auto") {
        "seg" => Ok(true),
        "text" => Ok(false),
        "auto" => Ok(Path::new(out).extension().is_some_and(|e| e == "seg")),
        other => Err(format!("unknown --format '{other}' (auto|text|seg)")),
    }
}

/// `tc generate --kind K --out PATH [--scale F] [--seed N] [--format auto|text|seg]`
pub fn generate(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["kind", "out", "scale", "seed", "format"]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(kind) = flags.get("kind") else {
        return fail("--kind is required (checkin|coauthor|syn|planted)");
    };
    let Some(out) = flags.get("out") else {
        return fail("--out is required");
    };
    let scale = match flags.get_f64("scale", 1.0) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let seed = match flags.get_usize("seed", 42) {
        Ok(s) => s as u64,
        Err(e) => return fail(e),
    };

    let network = match kind {
        "checkin" => {
            let cfg = tc_data::CheckinConfig {
                users: ((120.0 * scale) as usize).max(10),
                groups: ((10.0 * scale) as usize).max(2),
                seed,
                ..tc_data::CheckinConfig::default()
            };
            tc_data::generate_checkin(&cfg).network
        }
        "coauthor" => {
            let cfg = tc_data::CoauthorConfig {
                groups: ((6.0 * scale) as usize).clamp(2, 64),
                authors_per_group: ((12.0 * scale.sqrt()) as usize).max(4),
                seed,
                ..tc_data::CoauthorConfig::default()
            };
            tc_data::generate_coauthor(&cfg).network
        }
        "syn" => {
            let cfg = tc_data::SynConfig {
                vertices: ((2000.0 * scale) as usize).max(50),
                seed,
                ..tc_data::SynConfig::default()
            };
            tc_data::generate_synthetic(&cfg)
        }
        "planted" => {
            let cfg = tc_data::PlantedConfig {
                communities: ((4.0 * scale) as usize).max(2),
                seed,
                ..tc_data::PlantedConfig::default()
            };
            tc_data::generate_planted(&cfg).network
        }
        other => return fail(format!("unknown kind '{other}'")),
    };

    let save = match wants_segment(flags.get("format"), out) {
        Ok(true) => tc_store::save_network_segment_to_path(&network, Path::new(out)),
        Ok(false) => tc_data::save_network_to_path(&network, Path::new(out)),
        Err(e) => return fail(e),
    };
    if let Err(e) = save {
        return fail(e);
    }
    let s = network.stats();
    println!(
        "wrote {out}: {} vertices, {} edges, {} transactions, {} unique items",
        s.vertices, s.edges, s.transactions, s.items_unique
    );
    0
}

/// Loads a network in either format, auto-detected by magic bytes.
fn load_net(path: &str) -> Result<DatabaseNetwork, String> {
    let p = Path::new(path);
    match tc_store::detect_format(p).map_err(|e| e.to_string())? {
        DetectedFormat::SegmentNetwork => {
            tc_store::load_network_segment_from_path(p).map_err(|e| e.to_string())
        }
        DetectedFormat::TextNetwork => {
            tc_data::load_network_from_path(p).map_err(|e| e.to_string())
        }
        DetectedFormat::SegmentTree | DetectedFormat::TextTree => {
            Err(format!("{path} holds a TC-Tree, expected a network"))
        }
        DetectedFormat::Unknown => Err(format!("{path} is not a recognised network format")),
    }
}

/// `tc stats <net.dbnet>`
pub fn stats(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &[]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(path) = flags.positional.first() else {
        return fail("usage: tc stats <net.dbnet>");
    };
    let net = match load_net(path) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let s = net.stats();
    println!("vertices:       {}", s.vertices);
    println!("edges:          {}", s.edges);
    println!("transactions:   {}", s.transactions);
    println!("items (total):  {}", s.items_total);
    println!("items (unique): {}", s.items_unique);
    println!("triangles:      {}", tc_graph::count_triangles(net.graph()));
    println!("max degree:     {}", net.graph().max_degree());
    println!("mean degree:    {:.2}", tc_graph::mean_degree(net.graph()));
    println!(
        "avg clustering: {:.4}",
        tc_graph::average_clustering(net.graph())
    );
    println!("transitivity:   {:.4}", tc_graph::transitivity(net.graph()));
    0
}

/// `tc mine <net.dbnet> --alpha F [--miner tcfi|tcfa|tcs] [--threads N] [--epsilon F] [--top N]`
pub fn mine(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["alpha", "miner", "threads", "epsilon", "top"]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(path) = flags.positional.first() else {
        return fail("usage: tc mine <net.dbnet> --alpha <F>");
    };
    let alpha = match flags.get_f64("alpha", 0.1) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let epsilon = match flags.get_f64("epsilon", 0.1) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let top = match flags.get_usize("top", 20) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let threads = match flags.get_usize("threads", default_threads()) {
        Ok(t) => t.max(1),
        Err(e) => return fail(e),
    };
    let net = match load_net(path) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let miner_name = flags.get("miner").unwrap_or("tcfi");
    // Warn only on an *explicit* --threads: the default is whatever the
    // host offers, which non-tcfi miners legitimately ignore.
    if flags.get("threads").is_some() && threads > 1 && miner_name != "tcfi" {
        eprintln!("warning: --threads applies to the tcfi miner only; mining single-threaded");
    }
    let miner: Box<dyn Miner> = match (miner_name, threads) {
        ("tcfi", 1) => Box::new(TcfiMiner::default()),
        ("tcfi", t) => Box::new(ParallelTcfiMiner {
            max_len: usize::MAX,
            threads: t,
        }),
        ("tcfa", _) => Box::new(TcfaMiner::default()),
        ("tcs", _) => Box::new(TcsMiner::with_epsilon(epsilon)),
        (other, _) => return fail(format!("unknown miner '{other}'")),
    };

    let result = miner.mine(&net, alpha);
    println!(
        "{} found {} maximal pattern trusses (NV={}, NE={}) in {:.3}s ({} MPTD calls)",
        miner.name(),
        result.np(),
        result.nv(),
        result.ne(),
        result.stats.elapsed_secs,
        result.stats.mptd_calls
    );
    let mut communities = result.communities();
    communities.sort_by_key(|c| std::cmp::Reverse((c.pattern.len(), c.num_vertices())));
    println!("\ntop {} theme communities:", top.min(communities.len()));
    for c in communities.iter().take(top) {
        println!(
            "  {}  — {} vertices, {} edges",
            net.item_space().render(&c.pattern),
            c.num_vertices(),
            c.num_edges()
        );
    }
    0
}

/// `tc index <net> --out tree.tct|tree.seg [--threads N] [--format auto|text|seg]`
pub fn index(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["out", "threads", "format"]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(path) = flags.positional.first() else {
        return fail("usage: tc index <net> --out <tree.tct|tree.seg>");
    };
    let Some(out) = flags.get("out") else {
        return fail("--out is required");
    };
    let threads = match flags.get_usize("threads", default_threads()) {
        Ok(t) => t.max(1),
        Err(e) => return fail(e),
    };
    let net = match load_net(path) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let tree = TcTreeBuilder {
        threads,
        max_len: usize::MAX,
    }
    .build(&net);
    let save = match wants_segment(flags.get("format"), out) {
        Ok(true) => tc_store::save_tree_segment_to_path(&tree, Path::new(out)),
        Ok(false) => tree.save_to_path(Path::new(out)),
        Err(e) => return fail(e),
    };
    if let Err(e) = save {
        return fail(e);
    }
    println!(
        "wrote {out}: {} nodes, max depth {}, alpha* = {:.4}, built in {:.3}s",
        tree.num_nodes(),
        tree.max_depth(),
        tree.alpha_upper_bound(),
        tree.stats().build_secs
    );
    0
}

/// A query backend: the fully-parsed text tree or the lazy segment tree.
enum LoadedTree {
    Mem(TcTree),
    Seg(SegmentTcTree),
}

impl LoadedTree {
    fn open(path: &str) -> Result<LoadedTree, String> {
        let p = Path::new(path);
        match tc_store::detect_format(p).map_err(|e| e.to_string())? {
            DetectedFormat::SegmentTree => Ok(LoadedTree::Seg(
                SegmentTcTree::open(p).map_err(|e| e.to_string())?,
            )),
            DetectedFormat::TextTree => Ok(LoadedTree::Mem(
                TcTree::load_from_path(p).map_err(|e| e.to_string())?,
            )),
            DetectedFormat::SegmentNetwork | DetectedFormat::TextNetwork => {
                Err(format!("{path} holds a network, expected a TC-Tree"))
            }
            DetectedFormat::Unknown => Err(format!("{path} is not a recognised TC-Tree format")),
        }
    }

    fn query(&self, q: &Pattern, alpha: f64) -> Result<tc_index::QueryResult, String> {
        match self {
            LoadedTree::Mem(t) => Ok(t.query(q, alpha)),
            LoadedTree::Seg(t) => t.query(q, alpha).map_err(|e| e.to_string()),
        }
    }

    fn query_by_alpha(&self, alpha: f64) -> Result<tc_index::QueryResult, String> {
        match self {
            LoadedTree::Mem(t) => Ok(t.query_by_alpha(alpha)),
            LoadedTree::Seg(t) => t.query_by_alpha(alpha).map_err(|e| e.to_string()),
        }
    }
}

/// Resolves a `--pattern` spec (comma-separated numeric ids or, with a
/// network, item names) into a [`Pattern`].
fn parse_pattern(spec: &str, net: Option<&DatabaseNetwork>) -> Result<Pattern, String> {
    let mut items = Vec::new();
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        // Numeric id, or a name resolved through --network.
        let item = if let Ok(id) = token.parse::<u32>() {
            tc_txdb::Item(id)
        } else if let Some(net) = net {
            net.item_space()
                .get(token)
                .ok_or_else(|| format!("unknown item '{token}'"))?
        } else {
            return Err(format!(
                "item '{token}' is not numeric; pass --network to resolve names"
            ));
        };
        items.push(item);
    }
    Ok(Pattern::new(items))
}

/// Prints the shared truss listing — identical lines for local and
/// remote backends, so the two paths diff clean in CI.
fn print_trusses<'a>(
    trusses: impl ExactSizeIterator<Item = (Pattern, usize, usize)> + 'a,
    net: Option<&DatabaseNetwork>,
) {
    let total = trusses.len();
    for (pattern, vertices, edges) in trusses.take(20) {
        let rendered = match net {
            Some(n) => n.item_space().render(&pattern),
            None => pattern.to_string(),
        };
        println!("  {rendered}: {vertices} vertices, {edges} edges");
    }
    if total > 20 {
        println!("  … and {} more", total - 20);
    }
}

/// `tc query <tree.tct|tree.seg> [--alpha F] [--pattern a,b,c] [--network net.dbnet] [--json]`
/// `tc query --remote HOST:PORT [--alpha F] [--pattern a,b,c] [--network net.dbnet]
///  [--retries N] [--retry-max-delay MS] [--json]`
///
/// With `--json` the answer is printed as the serving wire object —
/// one line, identical to what the daemon's `JSON` frames and HTTP
/// bodies carry — so local and remote answers are byte-comparable
/// (CI's `http-smoke` job diffs exactly this against `curl`).
pub fn query(args: &[String]) -> i32 {
    let flags = match Flags::parse_with_switches(
        args,
        &[
            "alpha",
            "pattern",
            "network",
            "remote",
            "retries",
            "retry-max-delay",
        ],
        &["json"],
    ) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let as_json = flags.has("json");
    let alpha = match flags.get_f64("alpha", 0.0) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    // Optional network for item-name resolution and pretty printing.
    let net = match flags.get("network") {
        Some(p) => match load_net(p) {
            Ok(n) => Some(n),
            Err(e) => return fail(e),
        },
        None => None,
    };
    let pattern = match flags.get("pattern") {
        Some(spec) => match parse_pattern(spec, net.as_ref()) {
            Ok(p) => Some(p),
            Err(e) => return fail(e),
        },
        None => None,
    };

    if let Some(addr) = flags.get("remote") {
        if !flags.positional.is_empty() {
            return fail("--remote takes no tree path (the daemon already holds one)");
        }
        // BUSY rejections are the retryable failure: back off and try
        // again, up to --retries times. Everything else fails fast.
        let retries = match flags.get_usize("retries", 0) {
            Ok(r) => r as u32,
            Err(e) => return fail(e),
        };
        let retry_max_delay = match flags.get_usize("retry-max-delay", 2000) {
            Ok(ms) => std::time::Duration::from_millis(ms as u64),
            Err(e) => return fail(e),
        };
        let policy = tc_serve::RetryPolicy {
            retries,
            max_delay: retry_max_delay,
            ..tc_serve::RetryPolicy::default()
        };
        return query_remote(
            addr,
            &policy,
            pattern.as_ref(),
            alpha,
            net.as_ref(),
            as_json,
        );
    }
    if flags.get("retries").is_some() || flags.get("retry-max-delay").is_some() {
        return fail("--retries/--retry-max-delay apply to --remote queries only");
    }

    let Some(path) = flags.positional.first() else {
        return fail(
            "usage: tc query <tree.tct|tree.seg> [--alpha F] [--pattern items]\n       \
             tc query --remote <host:port> [--alpha F] [--pattern items]",
        );
    };
    let tree = match LoadedTree::open(path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let result = match &pattern {
        None => tree.query_by_alpha(alpha),
        Some(p) => tree.query(p, alpha),
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => return fail(e),
    };

    if as_json {
        print!(
            "{}",
            tc_serve::QueryResponse::from_result(&result).encode_json()
        );
        return 0;
    }
    println!(
        "retrieved {} maximal pattern trusses in {:.6}s ({} nodes visited)",
        result.retrieved_nodes, result.elapsed_secs, result.visited_nodes
    );
    if let LoadedTree::Seg(seg) = &tree {
        println!(
            "segment backend: materialized {} of {} nodes on demand",
            seg.materialized_nodes(),
            seg.num_nodes()
        );
    }
    print_trusses(
        result
            .trusses
            .iter()
            .map(|t| (t.pattern.clone(), t.num_vertices(), t.num_edges())),
        net.as_ref(),
    );
    0
}

/// The `--remote` arm of `tc query`: same flags, same output lines, but
/// the answer comes from a `tc serve` daemon over TCP.
fn query_remote(
    addr: &str,
    policy: &tc_serve::RetryPolicy,
    pattern: Option<&Pattern>,
    alpha: f64,
    net: Option<&DatabaseNetwork>,
    as_json: bool,
) -> i32 {
    let mut client = match tc_serve::ServeClient::connect_with_retry(addr, policy) {
        Ok(c) => c,
        Err(e) => return fail(format!("{addr}: {e}")),
    };
    let result = match pattern {
        None => client.qba(alpha),
        Some(p) => client.query(&p.iter().map(|i| i.0).collect::<Vec<_>>(), alpha),
    };
    let result = match result {
        Ok(r) => r,
        Err(e) => return fail(format!("{addr}: {e}")),
    };
    if as_json {
        print!("{}", result.encode_json());
        let _ = client.quit();
        return 0;
    }
    println!(
        "retrieved {} maximal pattern trusses in {:.6}s ({} nodes visited)",
        result.retrieved, result.elapsed_secs, result.visited
    );
    println!(
        "remote backend: {addr} ({} nodes, protocol v{})",
        client.nodes(),
        client.server_version()
    );
    print_trusses(
        result
            .trusses
            .iter()
            .map(|t| (t.pattern(), t.vertices, t.edges)),
        net,
    );
    let _ = client.quit();
    0
}

/// `tc serve <tree.seg> [--addr HOST:PORT] [--http-addr HOST:PORT] [--workers N]
///  [--max-inflight N] [--session-timeout SECS] [--rate-limit N]`
///
/// Opens a TC-Tree segment once and serves QBA/QBP/QUERY over TCP — and,
/// with `--http-addr`, over the HTTP/JSON gateway too — until
/// SIGTERM/SIGINT or a client's `SHUTDOWN` verb. `SIGHUP` re-opens the
/// segment path and hot-swaps it in without dropping sessions. Admission
/// is bounded: beyond `--max-inflight` concurrent sessions, new
/// connections are answered with a one-line `BUSY` greeting (TCP) or a
/// `503` (HTTP) and closed. `--rate-limit N` additionally caps each
/// client IP at N requests/second (0, the default, disables). Sessions
/// idle longer than `--session-timeout` seconds (default 300; 0
/// disables) are closed to free their admission slot.
///
/// Memory envelope: `--cache-bytes N[K|M|G]` bounds the bytes of
/// materialised truss decompositions (0, the default, is unbounded), and
/// `--page-source buffered|mmap` picks the page-read backing. Both apply
/// to `SIGHUP` reloads as well.
pub fn serve(args: &[String]) -> i32 {
    let flags = match Flags::parse(
        args,
        &[
            "addr",
            "http-addr",
            "workers",
            "max-inflight",
            "session-timeout",
            "rate-limit",
            "cache-bytes",
            "page-source",
        ],
    ) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(path) = flags.positional.first() else {
        return fail(
            "usage: tc serve <tree.seg> [--addr host:port] [--http-addr host:port] \
             [--workers N] [--max-inflight N] [--session-timeout secs] [--rate-limit per-sec] \
             [--cache-bytes N[K|M|G]] [--page-source buffered|mmap]",
        );
    };
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7641");
    let workers = match flags.get_usize("workers", default_threads()) {
        Ok(w) => w.max(1),
        Err(e) => return fail(e),
    };
    let max_inflight = match flags.get_usize("max-inflight", workers.saturating_mul(16).max(1)) {
        Ok(m) => m.max(1),
        Err(e) => return fail(e),
    };
    let idle_timeout = match flags.get_usize("session-timeout", 300) {
        Ok(0) => None,
        Ok(secs) => Some(std::time::Duration::from_secs(secs as u64)),
        Err(e) => return fail(e),
    };
    let http_addr = flags.get("http-addr").map(str::to_string);
    let rate_limit = match flags.get_usize("rate-limit", 0) {
        Ok(0) => None,
        Ok(per_sec) => Some(tc_serve::RateLimit::per_second(per_sec as f64)),
        Err(e) => return fail(e),
    };
    let cache_bytes = match flags.get("cache-bytes").map(parse_byte_size) {
        None | Some(Ok(0)) => None,
        Some(Ok(n)) => Some(n),
        Some(Err(e)) => return fail(e),
    };
    let source = match flags.get("page-source") {
        None => tc_store::SourceKind::default(),
        Some(s) => match tc_store::SourceKind::parse(s) {
            Some(k) => k,
            None => return fail(format!("--page-source {s}: expected buffered or mmap")),
        },
    };
    let store = tc_store::StoreOptions {
        source,
        cache_bytes,
    };

    // The daemon serves the lazy segment reader only: a text tree would
    // mean re-parsing the whole index up front — convert it once instead.
    let p = Path::new(path.as_str());
    let tree = match tc_store::detect_format(p).map_err(|e| e.to_string()) {
        Ok(DetectedFormat::SegmentTree) => match SegmentTcTree::open_with(p, store) {
            Ok(t) => t,
            Err(e) => return fail(e),
        },
        Ok(DetectedFormat::TextTree) => {
            return fail(format!(
                "{path} is a text tree; convert it first: tc convert {path} tree.seg"
            ))
        }
        Ok(DetectedFormat::SegmentNetwork | DetectedFormat::TextNetwork) => {
            return fail(format!("{path} holds a network, expected a TC-Tree"))
        }
        Ok(DetectedFormat::Unknown) => {
            return fail(format!("{path} is not a recognised TC-Tree format"))
        }
        Err(e) => return fail(e),
    };

    tc_serve::install_signal_handlers();
    let server = match tc_serve::Server::bind(
        tree,
        addr,
        tc_serve::ServeConfig {
            workers,
            max_inflight,
            idle_timeout,
            http_addr,
            rate_limit,
            reload_path: Some(std::path::PathBuf::from(path)),
            store,
        },
    ) {
        Ok(s) => s,
        Err(e) => return fail(format!("{addr}: {e}")),
    };
    let local = match server.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => return fail(e),
    };
    println!(
        "tc-serve listening on {local} ({path}, workers={workers}, max-inflight={max_inflight}, \
         page-source={}, cache-bytes={})",
        source.name(),
        cache_bytes.map_or_else(|| "unbounded".to_string(), |n| n.to_string())
    );
    if let Some(http) = server.local_http_addr() {
        match http {
            Ok(a) => println!("tc-serve http gateway on {a} (GET /healthz, /metrics, /qba, /qbp, /query; POST /query)"),
            Err(e) => return fail(e),
        }
    }
    // Piped stdout is block-buffered: flush so supervisors (and the smoke
    // test) can read the resolved address before the first connection.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    match server.run() {
        Ok(stats) => {
            println!(
                "shutdown complete: {} sessions admitted, {} busy-rejected, {} queries served \
                 ({} QBA, {} QBP, {} QUERY), {} protocol errors",
                stats.admitted,
                stats.rejected_busy,
                stats.queries_served(),
                stats.qba,
                stats.qbp,
                stats.query,
                stats.protocol_errors
            );
            0
        }
        Err(e) => fail(e),
    }
}

/// `tc shard`: hash-partitions a TC-Tree into N self-contained segment
/// files plus a `TCMAP01` shard map wiring them to daemon addresses.
///
/// Each output segment is a complete, independently servable TC-Tree
/// (root + the level-1 subtrees the shard owns); `tc router` scatters
/// queries across them and merges. Addresses come from `--addrs a,b,…`
/// verbatim, or are synthesised as `HOST:PORT_BASE+i`.
pub fn shard(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["shards", "out-dir", "host", "port-base", "addrs"]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(path) = flags.positional.first() else {
        return fail(
            "usage: tc shard <tree> --shards N [--out-dir DIR] [--addrs a1,a2,…] \
             [--host HOST] [--port-base PORT]",
        );
    };
    let shard_count = match flags.get_usize("shards", 2) {
        Ok(n) if (1..=tc_store::shardmap::MAX_SHARDS).contains(&n) => n,
        Ok(n) => {
            return fail(format!(
                "--shards {n} outside 1..={}",
                tc_store::shardmap::MAX_SHARDS
            ))
        }
        Err(e) => return fail(e),
    };
    let out_dir = Path::new(flags.get("out-dir").unwrap_or("shards"));
    let host = flags.get("host").unwrap_or("127.0.0.1");
    let port_base = match flags.get_usize("port-base", 7701) {
        Ok(p) if p + shard_count <= 65536 => p,
        Ok(p) => {
            return fail(format!(
                "--port-base {p} overflows ports for {shard_count} shards"
            ))
        }
        Err(e) => return fail(e),
    };
    let addrs: Vec<String> = match flags.get("addrs") {
        Some(list) => {
            let addrs: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(str::to_string)
                .collect();
            if addrs.len() != shard_count {
                return fail(format!(
                    "--addrs names {} daemons but --shards is {shard_count}",
                    addrs.len()
                ));
            }
            addrs
        }
        None => (0..shard_count)
            .map(|i| format!("{host}:{}", port_base + i))
            .collect(),
    };

    // Any tree format works as input: the shards are always segments.
    let tree = match LoadedTree::open(path) {
        Ok(LoadedTree::Mem(t)) => t,
        Ok(LoadedTree::Seg(s)) => match s.to_tree() {
            Ok(t) => t,
            Err(e) => return fail(e),
        },
        Err(e) => return fail(e),
    };

    if let Err(e) = std::fs::create_dir_all(out_dir) {
        return fail(format!("{}: {e}", out_dir.display()));
    }
    let scheme = tc_store::HashScheme::Crc32Item;
    let shards = tc_store::split_tree(&tree, scheme, shard_count as u32);
    let mut entries = Vec::with_capacity(shard_count);
    for (i, (shard, addr)) in shards.iter().zip(&addrs).enumerate() {
        let file = out_dir.join(format!("shard-{i:03}.seg"));
        if let Err(e) = tc_store::save_tree_segment_to_path(shard, &file) {
            return fail(format!("{}: {e}", file.display()));
        }
        println!(
            "shard {i}: {} ({} nodes, serve at {addr})",
            file.display(),
            shard.num_nodes()
        );
        entries.push(tc_store::ShardEntry {
            addr: addr.clone(),
            path: file.to_string_lossy().into_owned(),
        });
    }
    let map = tc_store::ShardMap {
        scheme,
        items: tc_store::level1_items(&tree),
        shards: entries,
    };
    let map_path = out_dir.join("shards.tcmap");
    if let Err(e) = map.save_to_path(&map_path) {
        return fail(format!("{}: {e}", map_path.display()));
    }
    println!(
        "shard map: {} ({shard_count} shards, scheme {}, {} level-1 items)",
        map_path.display(),
        scheme.name(),
        map.items.len()
    );
    0
}

/// `tc router`: the scatter-gather HTTP gateway over a `tc shard` layout.
///
/// Loads a `TCMAP01` map, pools one HTTP client set per shard daemon,
/// and serves the same surface as `tc serve`'s gateway (`/qba`, `/qbp`,
/// `/query`, `POST /query`, `/healthz`, `/metrics`) with answers merged
/// to be byte-identical to the unsharded segment (modulo `secs`).
/// SIGHUP re-reads the map; SIGTERM drains and exits.
pub fn router(args: &[String]) -> i32 {
    let flags = match Flags::parse_with_switches(
        args,
        &["http-addr", "max-inflight", "session-timeout", "rate-limit"],
        &["partial"],
    ) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(path) = flags.positional.first() else {
        return fail(
            "usage: tc router <shards.tcmap> [--http-addr host:port] [--max-inflight N] \
             [--session-timeout secs] [--rate-limit per-sec] [--partial]",
        );
    };
    let http_addr = flags.get("http-addr").unwrap_or("127.0.0.1:7642");
    let max_inflight = match flags.get_usize("max-inflight", 64) {
        Ok(m) => m.max(1),
        Err(e) => return fail(e),
    };
    let idle_timeout = match flags.get_usize("session-timeout", 30) {
        Ok(0) => None,
        Ok(secs) => Some(std::time::Duration::from_secs(secs as u64)),
        Err(e) => return fail(e),
    };
    let rate_limit = match flags.get_usize("rate-limit", 0) {
        Ok(0) => None,
        Ok(per_sec) => Some(tc_serve::RateLimit::per_second(per_sec as f64)),
        Err(e) => return fail(e),
    };
    let partial = flags.has("partial");

    let map = match tc_store::ShardMap::load_from_path(Path::new(path)) {
        Ok(m) => m,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let (shard_count, universe) = (map.shards.len(), map.items.len());

    tc_serve::install_signal_handlers();
    let router = match tc_router::Router::bind(
        map,
        http_addr,
        tc_router::RouterConfig {
            max_inflight,
            idle_timeout,
            rate_limit,
            partial,
            map_path: Some(std::path::PathBuf::from(path)),
        },
    ) {
        Ok(r) => r,
        Err(e) => return fail(format!("{http_addr}: {e}")),
    };
    let local = match router.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => return fail(e),
    };
    println!(
        "tc-router listening on {local} ({path}, shards={shard_count}, \
         universe={universe} items, max-inflight={max_inflight}, \
         partial={})",
        if partial { "on" } else { "off" }
    );
    // Piped stdout is block-buffered: flush so supervisors (and the smoke
    // test) can read the resolved address before the first connection.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    match router.run() {
        Ok(stats) => {
            println!(
                "router shutdown complete: {} requests, {} shard RPCs \
                 ({} transport errors), {} partial responses, {} reloads",
                stats.requests,
                stats.fanout,
                stats.shard_errors,
                stats.partial_responses,
                stats.reloads
            );
            0
        }
        Err(e) => fail(e),
    }
}

/// `tc convert <in> <out> [--to auto|text|seg]`
///
/// Converts networks and TC-Trees between the text and segment formats.
/// The input kind is auto-detected; `--to auto` (the default) targets the
/// `.seg` extension or, absent that, the opposite of the input's format.
pub fn convert(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["to"]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let (Some(input), Some(output)) = (flags.positional.first(), flags.positional.get(1)) else {
        return fail("usage: tc convert <in> <out> [--to auto|text|seg]");
    };
    let detected = match tc_store::detect_format(Path::new(input)) {
        Ok(DetectedFormat::Unknown) => {
            return fail(format!(
                "{input} is not a recognised network or tree format"
            ))
        }
        Ok(d) => d,
        Err(e) => return fail(e),
    };
    let to_segment = match flags.get("to") {
        // `auto` with no .seg extension: flip the input's format.
        None | Some("auto") if Path::new(output).extension().is_none_or(|e| e != "seg") => {
            matches!(
                detected,
                DetectedFormat::TextNetwork | DetectedFormat::TextTree
            )
        }
        other => match wants_segment(other, output) {
            Ok(seg) => seg,
            Err(e) => return fail(e),
        },
    };
    let (input, output) = (Path::new(input), Path::new(output));
    let result = match (detected, to_segment) {
        (DetectedFormat::TextNetwork, true) => {
            tc_store::convert::network_text_to_segment(input, output)
        }
        (DetectedFormat::SegmentNetwork, false) => {
            tc_store::convert::network_segment_to_text(input, output)
        }
        (DetectedFormat::TextTree, true) => tc_store::convert::tree_text_to_segment(input, output),
        (DetectedFormat::SegmentTree, false) => {
            tc_store::convert::tree_segment_to_text(input, output)
        }
        (DetectedFormat::TextNetwork | DetectedFormat::TextTree, false)
        | (DetectedFormat::SegmentNetwork | DetectedFormat::SegmentTree, true) => {
            return fail("input is already in the requested format");
        }
        (DetectedFormat::Unknown, _) => unreachable!("rejected above"),
    };
    if let Err(e) = result {
        return fail(e);
    }
    println!(
        "converted {} -> {} ({})",
        input.display(),
        output.display(),
        if to_segment { "segment" } else { "text" }
    );
    0
}

/// Parses one line of the `tc ingest` ops grammar into WAL records.
///
/// The grammar is line-oriented; blank lines and `#` comments are the
/// caller's to skip. A `tx` op may resolve item *names*: unknown names
/// are auto-interned, emitting an `AddItem` record ahead of the
/// transaction so replay always sees items before their first use.
///
/// ```text
/// item <name>            # rest of line is the name
/// db <vertex>
/// edge <u> <v>           # exactly one record per line
/// tx <vertex> <name,name,...>
/// ```
fn parse_ingest_op(
    line: &str,
    space: &mut tc_txdb::ItemSpace,
) -> Result<Vec<tc_store::WalRecord>, String> {
    use tc_store::WalRecord;
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb {
        "item" => {
            if rest.is_empty() {
                return Err("item needs a name".into());
            }
            space.intern(rest);
            Ok(vec![WalRecord::AddItem {
                name: rest.to_string(),
            }])
        }
        "db" => {
            let vertex: u32 = rest
                .parse()
                .map_err(|_| format!("db needs a vertex id, got '{rest}'"))?;
            Ok(vec![WalRecord::AddDatabase { vertex }])
        }
        "edge" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [u, v] = parts.as_slice() else {
                return Err(format!("edge needs exactly two vertex ids, got '{rest}'"));
            };
            let u: u32 = u.parse().map_err(|_| format!("bad vertex id '{u}'"))?;
            let v: u32 = v.parse().map_err(|_| format!("bad vertex id '{v}'"))?;
            if u == v {
                return Err(format!("edge {u} {v} is a self-loop"));
            }
            Ok(vec![WalRecord::AddEdge { u, v }])
        }
        "tx" => {
            let Some((vertex, names)) = rest.split_once(char::is_whitespace) else {
                return Err(format!(
                    "tx needs a vertex id and an item list, got '{rest}'"
                ));
            };
            let vertex: u32 = vertex
                .parse()
                .map_err(|_| format!("bad vertex id '{vertex}'"))?;
            let mut records = Vec::new();
            let mut items = Vec::new();
            for name in names.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                let item = match space.get(name) {
                    Some(item) => item,
                    None => {
                        records.push(WalRecord::AddItem {
                            name: name.to_string(),
                        });
                        space.intern(name)
                    }
                };
                items.push(item.0);
            }
            if items.is_empty() {
                return Err("tx needs at least one item".into());
            }
            records.push(WalRecord::AddTransaction { vertex, items });
            Ok(records)
        }
        other => Err(format!("unknown op '{other}' (expected item|db|edge|tx)")),
    }
}

/// `tc ingest <net.wal> --ops <file|-> [--base base.seg] [--durability always|batch]
///  [--batch-records N] [--batch-delay-ms N]`
///
/// Opens (or creates) the write-ahead log, replays whatever survived a
/// previous run, then appends one mutation per ops line. Lines stream:
/// with `--durability always` every acked record is already fsynced, so
/// killing the process mid-stream loses at most the line in flight.
pub fn ingest(args: &[String]) -> i32 {
    use std::io::BufRead;
    let flags = match Flags::parse(
        args,
        &[
            "base",
            "ops",
            "durability",
            "batch-records",
            "batch-delay-ms",
        ],
    ) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(wal_path) = flags.positional.first() else {
        return fail(
            "usage: tc ingest <net.wal> --ops <file|-> [--base base.seg] \
             [--durability always|batch]",
        );
    };
    let Some(ops_path) = flags.get("ops") else {
        return fail("--ops is required (a file of mutation lines, or - for stdin)");
    };
    let durability = match flags.get("durability").unwrap_or("always") {
        "always" => tc_store::Durability::Always,
        "batch" => {
            let max_records = match flags.get_usize("batch-records", 64) {
                Ok(n) => n.max(1),
                Err(e) => return fail(e),
            };
            let max_delay = match flags.get_usize("batch-delay-ms", 50) {
                Ok(ms) => std::time::Duration::from_millis(ms as u64),
                Err(e) => return fail(e),
            };
            tc_store::Durability::Batch {
                max_records,
                max_delay,
            }
        }
        other => return fail(format!("unknown --durability '{other}' (always|batch)")),
    };
    let reader: Box<dyn BufRead> = if ops_path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        match std::fs::File::open(ops_path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => return fail(format!("{ops_path}: {e}")),
        }
    };

    let base = flags.get("base").map(Path::new);
    let store = match tc_store::WalStore::open(base, Path::new(wal_path), durability) {
        Ok(s) => s,
        Err(e) => return fail(format!("{wal_path}: {e}")),
    };
    print!(
        "recovered {} records from {wal_path}",
        store.recovered_records()
    );
    if store.truncated_bytes() > 0 {
        print!(" (torn tail: {} bytes truncated)", store.truncated_bytes());
    }
    println!();

    let mut space = store.network().item_space().clone();
    let mut appended = 0u64;
    for (no, line) in reader.lines().enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => return fail(format!("{ops_path}: {e}")),
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let records = match parse_ingest_op(trimmed, &mut space) {
            Ok(r) => r,
            Err(e) => return fail(format!("{ops_path}:{}: {e}", no + 1)),
        };
        for record in &records {
            if let Err(e) = store.append(record) {
                return fail(format!("{wal_path}: append failed: {e}"));
            }
            appended += 1;
        }
    }
    if let Err(e) = store.flush() {
        return fail(format!("{wal_path}: flush failed: {e}"));
    }
    println!(
        "appended {appended} records to {wal_path} (durable through seqno {})",
        store.wal().durable_seqno()
    );
    0
}

/// `tc checkpoint <net.wal> --out <net.seg> [--base base.seg]`
///
/// Folds the base segment plus the log into a fresh segment at `--out`,
/// then resets the log to a single checkpoint marker. Crash-safe by
/// write ordering: the segment is fsynced and renamed into place before
/// the log is touched.
pub fn checkpoint(args: &[String]) -> i32 {
    let flags = match Flags::parse(args, &["base", "out"]) {
        Ok(f) => f,
        Err(e) => return fail(e),
    };
    let Some(wal_path) = flags.positional.first() else {
        return fail("usage: tc checkpoint <net.wal> --out <net.seg> [--base base.seg]");
    };
    let Some(out) = flags.get("out") else {
        return fail("--out is required");
    };
    let base = flags.get("base").map(Path::new);
    let report = match tc_store::wal::checkpoint(base, Path::new(wal_path), Path::new(out)) {
        Ok(r) => r,
        Err(e) => return fail(format!("{wal_path}: {e}")),
    };
    if report.truncated_bytes > 0 {
        println!(
            "torn tail: {} bytes truncated while opening {wal_path}",
            report.truncated_bytes
        );
    }
    println!(
        "folded {} records into {out}: {} vertices, {} edges, {} transactions, {} unique items",
        report.folded_records,
        report.stats.vertices,
        report.stats.edges,
        report.stats.transactions,
        report.stats.items_unique
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_positional_and_options() {
        let f = Flags::parse(
            &strs(&["net.dbnet", "--alpha", "0.5", "--top", "3"]),
            &["alpha", "top"],
        )
        .unwrap();
        assert_eq!(f.positional, vec!["net.dbnet"]);
        assert_eq!(f.get("alpha"), Some("0.5"));
        assert_eq!(f.get_f64("alpha", 0.0).unwrap(), 0.5);
        assert_eq!(f.get_usize("top", 20).unwrap(), 3);
        assert_eq!(f.get_f64("missing", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn flags_missing_value_is_error() {
        assert!(Flags::parse(&strs(&["--alpha"]), &["alpha"]).is_err());
    }

    #[test]
    fn byte_sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_byte_size("4096"), Ok(4096));
        assert_eq!(parse_byte_size("0"), Ok(0));
        assert_eq!(parse_byte_size("64K"), Ok(64 << 10));
        assert_eq!(parse_byte_size("64kb"), Ok(64 << 10));
        assert_eq!(parse_byte_size("8M"), Ok(8 << 20));
        assert_eq!(parse_byte_size("2G"), Ok(2u64 << 30));
        assert_eq!(parse_byte_size(" 16m "), Ok(16 << 20));
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("G").is_err());
        assert!(parse_byte_size("12T").is_err());
        assert!(parse_byte_size("-5M").is_err());
        assert!(parse_byte_size("99999999999999999999G").is_err());
        assert!(
            parse_byte_size(&format!("{}G", u64::MAX / 2)).is_err(),
            "shifted-out bits must error, not truncate"
        );
    }

    #[test]
    fn flags_bad_numeric_is_error() {
        let f = Flags::parse(&strs(&["--alpha", "abc"]), &["alpha"]).unwrap();
        assert!(f.get_f64("alpha", 0.0).is_err());
        assert!(f.get_usize("alpha", 0).is_err());
    }

    #[test]
    fn flags_last_occurrence_wins() {
        let f = Flags::parse(&strs(&["--alpha", "0.1", "--alpha", "0.9"]), &["alpha"]).unwrap();
        assert_eq!(f.get("alpha"), Some("0.9"));
    }

    #[test]
    fn generate_requires_kind_and_out() {
        assert_eq!(generate(&strs(&["--out", "/tmp/x.dbnet"])), 2);
        assert_eq!(generate(&strs(&["--kind", "checkin"])), 2);
        assert_eq!(
            generate(&strs(&["--kind", "nope", "--out", "/tmp/x.dbnet"])),
            2
        );
    }

    #[test]
    fn full_cli_pipeline_in_process() {
        let dir = std::env::temp_dir().join("tc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("cli.dbnet");
        let tree = dir.join("cli.tct");
        let net_s = net.to_string_lossy().to_string();
        let tree_s = tree.to_string_lossy().to_string();

        assert_eq!(
            generate(&strs(&[
                "--kind", "coauthor", "--out", &net_s, "--scale", "0.5", "--seed", "3"
            ])),
            0
        );
        assert_eq!(stats(std::slice::from_ref(&net_s)), 0);
        assert_eq!(mine(&strs(&[&net_s, "--alpha", "0.1", "--top", "3"])), 0);
        assert_eq!(
            mine(&strs(&[&net_s, "--alpha", "0.1", "--miner", "tcfa"])),
            0
        );
        assert_eq!(
            mine(&strs(&[
                &net_s,
                "--alpha",
                "0.1",
                "--miner",
                "tcs",
                "--epsilon",
                "0.2"
            ])),
            0
        );
        assert_eq!(
            index(&strs(&[&net_s, "--out", &tree_s, "--threads", "2"])),
            0
        );
        assert_eq!(query(&strs(&[&tree_s, "--alpha", "0.2"])), 0);
        assert_eq!(
            query(&strs(&[
                &tree_s,
                "--alpha",
                "0.0",
                "--pattern",
                "0,1",
                "--network",
                &net_s
            ])),
            0
        );
        // Named pattern resolution needs --network.
        assert_eq!(
            query(&strs(&[
                &tree_s,
                "--pattern",
                "data mining",
                "--network",
                &net_s
            ])),
            0
        );
        assert_eq!(query(&strs(&[&tree_s, "--pattern", "data mining"])), 2);
        // Unknown item name.
        assert_eq!(
            query(&strs(&[&tree_s, "--pattern", "zzz", "--network", &net_s])),
            2
        );

        std::fs::remove_file(&net).ok();
        std::fs::remove_file(&tree).ok();
    }

    #[test]
    fn segment_pipeline_in_process() {
        let dir = std::env::temp_dir().join("tc_cli_seg_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_txt = dir.join("seg.dbnet");
        let net_seg = dir.join("seg.netseg.seg");
        let tree_seg = dir.join("seg.tree.seg");
        let tree_txt = dir.join("seg.tree.tct");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();

        // generate directly to a segment (extension-driven).
        assert_eq!(
            generate(&strs(&[
                "--kind",
                "planted",
                "--out",
                &s(&net_seg),
                "--seed",
                "5"
            ])),
            0
        );
        // stats and mine auto-detect the segment network.
        assert_eq!(stats(&strs(&[&s(&net_seg)])), 0);
        assert_eq!(
            mine(&strs(&[&s(&net_seg), "--alpha", "0.1", "--top", "2"])),
            0
        );
        // index a segment network into a segment tree, query it.
        assert_eq!(
            index(&strs(&[
                &s(&net_seg),
                "--out",
                &s(&tree_seg),
                "--format",
                "seg"
            ])),
            0
        );
        assert_eq!(query(&strs(&[&s(&tree_seg), "--alpha", "0.1"])), 0);
        assert_eq!(
            query(&strs(&[
                &s(&tree_seg),
                "--pattern",
                "0,1",
                "--network",
                &s(&net_seg)
            ])),
            0
        );
        // convert both ways; querying a network file fails cleanly.
        assert_eq!(convert(&strs(&[&s(&net_seg), &s(&net_txt)])), 0);
        assert_eq!(
            convert(&strs(&[&s(&tree_seg), &s(&tree_txt), "--to", "text"])),
            0
        );
        assert_eq!(query(&strs(&[&s(&tree_txt), "--alpha", "0.1"])), 0);
        assert_eq!(query(&strs(&[&s(&net_seg)])), 2);
        assert_eq!(stats(&strs(&[&s(&tree_seg)])), 2);
        // Re-converting to the same format is rejected.
        assert_eq!(
            convert(&strs(&[&s(&net_seg), &s(&net_txt), "--to", "seg"])),
            2
        );

        for p in [&net_txt, &net_seg, &tree_seg, &tree_txt] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn missing_files_fail_cleanly() {
        assert_eq!(stats(&strs(&["/nonexistent/net.dbnet"])), 2);
        assert_eq!(mine(&strs(&["/nonexistent/net.dbnet"])), 2);
        assert_eq!(
            index(&strs(&["/nonexistent/net.dbnet", "--out", "/tmp/t.tct"])),
            2
        );
        assert_eq!(query(&strs(&["/nonexistent/tree.tct"])), 2);
        assert_eq!(mine(&strs(&[])), 2);
    }

    #[test]
    fn unknown_flags_are_rejected_with_suggestions() {
        // Typo'd flags must fail loudly, not be silently ignored.
        let err = Flags::parse(&strs(&["--thread", "8"]), &["alpha", "threads"]).unwrap_err();
        assert!(err.contains("did you mean --threads"), "{err}");
        let err = Flags::parse(&strs(&["--frobnicate", "1"]), &["alpha", "top"]).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");
        assert!(!err.contains("did you mean"), "{err}");
        let err = Flags::parse(&strs(&["--x", "1"]), &[]).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");

        // End to end through the subcommands (exit code 2, file untouched).
        assert_eq!(mine(&strs(&["net.dbnet", "--thread", "8"])), 2);
        assert_eq!(index(&strs(&["net.dbnet", "--ot", "x.tct"])), 2);
        assert_eq!(stats(&strs(&["net.dbnet", "--verbose", "1"])), 2);
        assert_eq!(
            query(&strs(&["t.tct", "--pattren", "0,1", "--alpha", "0.1"])),
            2
        );
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("threads", "threads"), 0);
        assert_eq!(edit_distance("thread", "threads"), 1);
        assert_eq!(edit_distance("treads", "threads"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn switch_flags_take_no_value_and_get_suggestions() {
        let f = Flags::parse_with_switches(
            &strs(&["tree.seg", "--json", "--alpha", "0.2"]),
            &["alpha"],
            &["json"],
        )
        .unwrap();
        assert!(f.has("json"));
        assert_eq!(f.get("alpha"), Some("0.2"));
        assert_eq!(f.positional, vec!["tree.seg".to_string()]);
        let err = Flags::parse_with_switches(&strs(&["--jsno"]), &[], &["json"]).unwrap_err();
        assert!(err.contains("--json"), "{err}");
    }

    #[test]
    fn remote_query_round_trips_against_a_daemon() {
        let dir = std::env::temp_dir().join("tc_cli_remote_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("remote.dbnet");
        let tree = dir.join("remote.seg");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();
        assert_eq!(
            generate(&strs(&[
                "--kind",
                "planted",
                "--out",
                &s(&net),
                "--seed",
                "9"
            ])),
            0
        );
        assert_eq!(
            index(&strs(&[&s(&net), "--out", &s(&tree), "--format", "seg"])),
            0
        );

        let seg = SegmentTcTree::open(&tree).unwrap();
        let server = tc_serve::Server::bind(
            seg,
            "127.0.0.1:0",
            tc_serve::ServeConfig {
                workers: 2,
                max_inflight: 8,
                ..tc_serve::ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        assert_eq!(query(&strs(&["--remote", &addr, "--alpha", "0.1"])), 0);
        assert_eq!(
            query(&strs(&[
                "--remote",
                &addr,
                "--pattern",
                "0,1",
                "--network",
                &s(&net)
            ])),
            0
        );
        // --json prints the wire object for both arms; same exit paths.
        assert_eq!(
            query(&strs(&["--remote", &addr, "--alpha", "0.1", "--json"])),
            0
        );
        assert_eq!(query(&strs(&[&s(&tree), "--alpha", "0.1", "--json"])), 0);
        // A tree path alongside --remote is contradictory.
        assert_eq!(
            query(&strs(&[&s(&tree), "--remote", &addr, "--alpha", "0.1"])),
            2
        );

        tc_serve::ServeClient::connect(&addr)
            .unwrap()
            .shutdown_server()
            .unwrap();
        daemon.join().unwrap();
        // Daemon gone: remote queries fail cleanly.
        assert_eq!(query(&strs(&["--remote", &addr, "--alpha", "0.1"])), 2);

        for p in [&net, &tree] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_rejects_non_segment_inputs() {
        let dir = std::env::temp_dir().join("tc_cli_serve_reject_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("sr.dbnet");
        let tree_txt = dir.join("sr.tct");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();
        assert_eq!(
            generate(&strs(&["--kind", "planted", "--out", &s(&net)])),
            0
        );
        assert_eq!(index(&strs(&[&s(&net), "--out", &s(&tree_txt)])), 0);
        // Text tree, network file, missing file: all refused up front.
        assert_eq!(serve(&strs(&[&s(&tree_txt)])), 2);
        assert_eq!(serve(&strs(&[&s(&net)])), 2);
        assert_eq!(serve(&strs(&["/nonexistent/tree.seg"])), 2);
        assert_eq!(serve(&strs(&[])), 2);
        for p in [&net, &tree_txt] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn ingest_and_checkpoint_round_trip() {
        let dir = std::env::temp_dir().join(format!("tc_cli_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("net.wal");
        let seg = dir.join("net.seg");
        let seg2 = dir.join("net2.seg");
        let ops = dir.join("ops.txt");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();

        std::fs::write(
            &ops,
            "# phase one\n\
             item beer\n\
             item diaper\n\
             tx 0 beer,diaper\n\
             tx 1 beer\n\
             edge 0 1\n\
             edge 1 2\n\
             edge 2 0\n\
             db 3\n",
        )
        .unwrap();
        assert_eq!(ingest(&strs(&[&s(&wal), "--ops", &s(&ops)])), 0);
        assert_eq!(checkpoint(&strs(&[&s(&wal), "--out", &s(&seg)])), 0);
        // The fold is a real segment network: stats auto-detects it.
        assert_eq!(stats(&strs(&[&s(&seg)])), 0);

        // Phase two over the checkpointed base: a tx resolving an item
        // name interned in phase one, plus a brand-new auto-interned one.
        std::fs::write(&ops, "tx 2 beer,nuts\nedge 0 3\n").unwrap();
        assert_eq!(
            ingest(&strs(&[
                &s(&wal),
                "--ops",
                &s(&ops),
                "--base",
                &s(&seg),
                "--durability",
                "batch",
                "--batch-records",
                "2",
            ])),
            0
        );
        assert_eq!(
            checkpoint(&strs(&[&s(&wal), "--base", &s(&seg), "--out", &s(&seg2)])),
            0
        );
        let full = tc_store::load_network_segment_from_path(&seg2).unwrap();
        assert_eq!(full.num_vertices(), 4);
        assert_eq!(full.num_edges(), 4);
        assert_eq!(full.item_space().len(), 3);
        assert_eq!(full.database(2).num_transactions(), 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_rejects_bad_ops_and_missing_flags() {
        let dir = std::env::temp_dir().join(format!("tc_cli_wal_bad_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("bad.wal");
        let ops = dir.join("bad_ops.txt");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();

        assert_eq!(ingest(&strs(&[&s(&wal)])), 2, "--ops is required");
        assert_eq!(ingest(&strs(&[])), 2, "wal path is required");
        assert_eq!(checkpoint(&strs(&[&s(&wal)])), 2, "--out is required");

        for bad in [
            "edge 3 3\n",       // self-loop
            "edge 1\n",         // missing endpoint
            "tx 0\n",           // no item list
            "tx 0 ,\n",         // empty item list
            "db x\n",           // non-numeric vertex
            "item \n",          // empty name
            "frobnicate 1 2\n", // unknown verb
        ] {
            std::fs::write(&ops, bad).unwrap();
            assert_eq!(
                ingest(&strs(&[&s(&wal), "--ops", &s(&ops)])),
                2,
                "op {bad:?} must be rejected"
            );
        }
        assert_eq!(
            ingest(&strs(&[
                &s(&wal),
                "--ops",
                &s(&ops),
                "--durability",
                "sometimes"
            ])),
            2
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remote_query_retries_reach_a_briefly_busy_daemon() {
        let dir = std::env::temp_dir().join(format!("tc_cli_retry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("retry.dbnet");
        let tree = dir.join("retry.seg");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();
        assert_eq!(
            generate(&strs(&[
                "--kind",
                "planted",
                "--out",
                &s(&net),
                "--seed",
                "7"
            ])),
            0
        );
        assert_eq!(
            index(&strs(&[&s(&net), "--out", &s(&tree), "--format", "seg"])),
            0
        );

        let seg = SegmentTcTree::open(&tree).unwrap();
        let server = tc_serve::Server::bind(
            seg,
            "127.0.0.1:0",
            tc_serve::ServeConfig {
                workers: 1,
                max_inflight: 1,
                ..tc_serve::ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        // Hold the only slot; without retries the query is turned away.
        let holder = tc_serve::ServeClient::connect(&addr).unwrap();
        assert_eq!(query(&strs(&["--remote", &addr, "--alpha", "0.1"])), 2);
        // Release the slot shortly; a retrying query must get through.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(200));
            holder.quit().unwrap();
        });
        assert_eq!(
            query(&strs(&[
                "--remote",
                &addr,
                "--alpha",
                "0.1",
                "--retries",
                "40",
                "--retry-max-delay",
                "200",
            ])),
            0
        );
        releaser.join().unwrap();
        // Retry flags without --remote are contradictory.
        assert_eq!(query(&strs(&[&s(&tree), "--retries", "3"])), 2);

        tc_serve::ServeClient::connect(&addr)
            .unwrap()
            .shutdown_server()
            .unwrap();
        daemon.join().unwrap();
        for p in [&net, &tree] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn shard_writes_segments_and_map_and_router_validates_input() {
        let dir = std::env::temp_dir().join(format!("tc_cli_shard_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("sh.dbnet");
        let tree = dir.join("sh.tree.seg");
        let out = dir.join("layout");
        let s = |p: &std::path::Path| p.to_string_lossy().to_string();

        assert_eq!(
            generate(&strs(&[
                "--kind",
                "planted",
                "--out",
                &s(&net),
                "--seed",
                "9"
            ])),
            0
        );
        assert_eq!(
            index(&strs(&[&s(&net), "--out", &s(&tree), "--format", "seg"])),
            0
        );

        // A 3-way split: three segments plus the map, all loadable.
        assert_eq!(
            shard(&strs(&[
                &s(&tree),
                "--shards",
                "3",
                "--out-dir",
                &s(&out),
                "--port-base",
                "7801",
            ])),
            0
        );
        let map = tc_store::ShardMap::load_from_path(&out.join("shards.tcmap")).unwrap();
        assert_eq!(map.shards.len(), 3);
        assert_eq!(map.shards[0].addr, "127.0.0.1:7801");
        assert_eq!(map.shards[2].addr, "127.0.0.1:7803");
        // num_nodes() excludes the root, so the shard counts partition
        // the full tree's exactly.
        let mut total_nodes = 0;
        for i in 0..3 {
            let seg = SegmentTcTree::open(&out.join(format!("shard-{i:03}.seg"))).unwrap();
            total_nodes += seg.to_tree().unwrap().num_nodes();
        }
        let full = SegmentTcTree::open(&tree).unwrap().to_tree().unwrap();
        assert_eq!(total_nodes, full.num_nodes());

        // Bad inputs are refused up front.
        assert_eq!(shard(&strs(&[&s(&tree), "--shards", "0"])), 2);
        assert_eq!(
            shard(&strs(&[&s(&tree), "--shards", "3", "--addrs", "a:1,b:2"])),
            2,
            "--addrs arity must match --shards"
        );
        assert_eq!(
            shard(&strs(&[&s(&net), "--shards", "2"])),
            2,
            "networks are not trees"
        );
        assert_eq!(
            router(&strs(&[&s(&tree)])),
            2,
            "a segment is not a shard map"
        );
        assert_eq!(router(&strs(&["/nonexistent.tcmap"])), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_miner_rejected() {
        let dir = std::env::temp_dir().join("tc_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let net = dir.join("m.dbnet");
        let net_s = net.to_string_lossy().to_string();
        assert_eq!(generate(&strs(&["--kind", "planted", "--out", &net_s])), 0);
        assert_eq!(mine(&strs(&[&net_s, "--miner", "bogus"])), 2);
        std::fs::remove_file(&net).ok();
    }
}
